//! The synthetic workload generator.
//!
//! Generation is two-phase:
//!
//! 1. **Static layout** — build a synthetic program: basic blocks at fixed
//!    PCs, static register operands (dependences), a memory-access *site*
//!    per static load/store (bound to a hot/warm/cold region with its own
//!    walk pattern), and a branch *site behaviour* per block terminator
//!    (loop back-edge, data-dependent biased branch, call, or return).
//! 2. **Dynamic walk** — execute the layout, materialising effective
//!    addresses, branch outcomes and PCs.
//!
//! The dynamic stream is *sequentially consistent*: the PC of instruction
//! `k+1` always equals [`Inst::successor_pc`] of instruction `k`. The
//! simulator's fetch stage relies on this to follow the correct path.

use dcg_isa::{ArchReg, BranchInfo, BranchKind, Inst, MemRef, OpClass, RegFileKind};
use dcg_testkit::rng::SmallRng;

use crate::{BenchmarkProfile, InstStream};

/// Base virtual address of the synthetic code region.
const CODE_BASE: u64 = 0x0000_1000;
/// Base virtual addresses of the three data regions (disjoint by construction).
const HOT_BASE: u64 = 0x1000_0000;
const WARM_BASE: u64 = 0x2000_0000;
const COLD_BASE: u64 = 0x4000_0000;

/// Integer registers reserved as long-lived globals (base pointers,
/// loop-invariant values). The remaining non-zero registers form the
/// destination pool.
const INT_GLOBALS: std::ops::Range<u8> = 0..6;
const INT_POOL: std::ops::Range<u8> = 6..31;
/// FP registers reserved as long-lived globals.
const FP_GLOBALS: std::ops::Range<u8> = 28..31;
const FP_POOL: std::ops::Range<u8> = 0..28;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Region {
    Hot,
    Warm,
    Cold,
}

#[derive(Debug, Clone, Copy)]
struct MemSite {
    region: Region,
    /// Base offset of this site's private slice within the region.
    base: u64,
    /// Length of the site's slice: small for hot sites (tight reuse,
    /// L1-resident), medium for warm sites (L2-resident), the whole region
    /// for cold/chasing sites (no reuse before eviction).
    span: u64,
    /// Walk stride in bytes (line-sized for streaming regions).
    stride: u64,
    /// Pointer-chasing site: addresses are hashed (no spatial locality).
    chase: bool,
    /// Dense site index into the dynamic per-site counters.
    counter_idx: usize,
}

#[derive(Debug, Clone, Copy)]
enum Terminator {
    /// Loop back-edge to this block's own head; taken `trip - 1` times in a
    /// row, then falls through.
    LoopBack { trip: u32 },
    /// Data-dependent branch: taken (to `taken_block`) with `taken_prob`.
    Biased { taken_prob: f64, taken_block: usize },
    /// Call to the function starting at `func_block`; the return resumes at
    /// the next sequential block.
    Call { func_block: usize },
    /// Return to the dynamic call site (or to block 0 when the stack is
    /// empty, which only happens if a walk starts inside a function).
    Return,
    /// Unconditional jump to `target_block`.
    Jump { target_block: usize },
}

#[derive(Debug, Clone)]
enum StaticInst {
    Op {
        class: OpClass,
        dest: ArchReg,
        srcs: [Option<ArchReg>; 2],
    },
    Load {
        dest: ArchReg,
        base: ArchReg,
        site: MemSite,
    },
    Store {
        data: ArchReg,
        base: ArchReg,
        site: MemSite,
    },
    Branch {
        src: ArchReg,
        term: Terminator,
    },
}

#[derive(Debug, Clone)]
struct Block {
    start_pc: u64,
    insts: Vec<StaticInst>,
}

impl Block {
    fn pc_of(&self, idx: usize) -> u64 {
        self.start_pc + 4 * idx as u64
    }
}

#[derive(Debug)]
struct StaticCode {
    blocks: Vec<Block>,
    mem_sites: usize,
}

/// Deterministic synthetic instruction stream for one [`BenchmarkProfile`].
///
/// Two workloads constructed from the same `(profile, seed)` pair produce
/// identical streams. See the [crate docs](crate) for the modelling
/// rationale.
#[derive(Debug)]
pub struct SyntheticWorkload {
    profile: BenchmarkProfile,
    code: StaticCode,
    rng: SmallRng,
    // --- walk state ---
    cur_block: usize,
    cur_idx: usize,
    call_stack: Vec<(usize, usize)>,
    loop_counters: Vec<u32>,
    site_counters: Vec<u64>,
    emitted: u64,
}

impl SyntheticWorkload {
    /// Build the static code layout for `profile` and position the walk at
    /// its first instruction.
    ///
    /// # Panics
    ///
    /// Panics if `profile` fails [`BenchmarkProfile::validate`].
    pub fn new(profile: BenchmarkProfile, seed: u64) -> SyntheticWorkload {
        if let Err(e) = profile.validate() {
            panic!("invalid profile {:?}: {e}", profile.name);
        }
        let mut build_rng = SmallRng::seed_from_u64(seed ^ 0xD1C6_0000_0000_0000);
        let code = build_static_code(&profile, &mut build_rng);
        let loop_counters = vec![0; code.blocks.len()];
        let site_counters = vec![0; code.mem_sites];
        SyntheticWorkload {
            profile,
            code,
            rng: SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5EED),
            cur_block: 0,
            cur_idx: 0,
            call_stack: Vec::with_capacity(8),
            loop_counters,
            site_counters,
            emitted: 0,
        }
    }

    /// The profile this workload was built from.
    pub fn profile(&self) -> &BenchmarkProfile {
        &self.profile
    }

    /// Total static instructions in the synthetic code layout.
    pub fn static_code_size(&self) -> usize {
        self.code.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Number of dynamic instructions emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    fn site_address(&mut self, site: &MemSite) -> u64 {
        let region_base = match site.region {
            Region::Hot => HOT_BASE,
            Region::Warm => WARM_BASE,
            Region::Cold => COLD_BASE,
        };
        let count = self.site_counters[site.counter_idx];
        self.site_counters[site.counter_idx] = count.wrapping_add(1);
        let offset = if site.chase {
            // Pointer chasing: pseudo-random permutation walk, 8-byte
            // aligned, salted per site so chains do not collide.
            let salt = (site.counter_idx as u64) << 40;
            splitmix(count ^ salt) % (site.span / 8) * 8
        } else {
            (count * site.stride) % site.span
        };
        region_base + site.base + offset
    }
}

/// Draw a per-site taken probability for a data-dependent branch.
///
/// Real branch sites are overwhelmingly *strongly* biased one way (that is
/// why 2-level predictors reach ~95 % accuracy on SPEC); only a minority
/// are genuinely data-dependent. `mean_taken` sets the fraction of sites
/// preferring the taken direction.
fn site_bias(rng: &mut SmallRng, mean_taken: f64) -> f64 {
    let prefers_taken = rng.gen_bool(mean_taken);
    let hard = rng.gen_bool(0.15);
    match (hard, prefers_taken) {
        (true, true) => 0.72,
        (true, false) => 0.28,
        (false, true) => 0.975,
        (false, false) => 0.025,
    }
}

/// SplitMix64 finaliser: cheap, deterministic address hashing.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl InstStream for SyntheticWorkload {
    fn next_inst(&mut self) -> Inst {
        let pc = self.code.blocks[self.cur_block].pc_of(self.cur_idx);
        let sinst = self.code.blocks[self.cur_block].insts[self.cur_idx].clone();
        let inst = match sinst {
            StaticInst::Op { class, dest, srcs } => {
                self.cur_idx += 1;
                Inst::alu(pc, class).with_dest(dest).with_srcs(srcs)
            }
            StaticInst::Load { dest, base, site } => {
                let addr = self.site_address(&site);
                self.cur_idx += 1;
                Inst::load(pc, MemRef::new(addr, 8))
                    .with_dest(dest)
                    .with_srcs([Some(base), None])
            }
            StaticInst::Store { data, base, site } => {
                let addr = self.site_address(&site);
                self.cur_idx += 1;
                Inst::store(pc, MemRef::new(addr, 8)).with_srcs([Some(base), Some(data)])
            }
            StaticInst::Branch { src, term } => {
                let (info, next_block, next_idx) = self.resolve_branch(pc, term);
                self.cur_block = next_block;
                self.cur_idx = next_idx;
                Inst::branch(pc, info).with_srcs([Some(src), None])
            }
        };
        debug_assert!(inst.is_well_formed());
        self.emitted += 1;
        inst
    }

    fn name(&self) -> &str {
        self.profile.name
    }
}

impl SyntheticWorkload {
    fn resolve_branch(&mut self, pc: u64, term: Terminator) -> (BranchInfo, usize, usize) {
        let fallthrough = (self.cur_block + 1) % self.code.blocks.len();
        match term {
            Terminator::LoopBack { trip } => {
                let counter = &mut self.loop_counters[self.cur_block];
                *counter += 1;
                let target_pc = self.code.blocks[self.cur_block].start_pc;
                if *counter < trip {
                    (BranchInfo::conditional(true, target_pc), self.cur_block, 0)
                } else {
                    *counter = 0;
                    (BranchInfo::conditional(false, target_pc), fallthrough, 0)
                }
            }
            Terminator::Biased {
                taken_prob,
                taken_block,
            } => {
                let taken = self.rng.gen_bool(taken_prob);
                let target_pc = self.code.blocks[taken_block].start_pc;
                if taken {
                    (BranchInfo::conditional(true, target_pc), taken_block, 0)
                } else {
                    (BranchInfo::conditional(false, target_pc), fallthrough, 0)
                }
            }
            Terminator::Call { func_block } => {
                self.call_stack.push((fallthrough, 0));
                let target_pc = self.code.blocks[func_block].start_pc;
                (
                    BranchInfo {
                        kind: BranchKind::Call,
                        taken: true,
                        target: target_pc,
                    },
                    func_block,
                    0,
                )
            }
            Terminator::Return => {
                let (ret_block, ret_idx) = self.call_stack.pop().unwrap_or((0, 0));
                let target_pc = self.code.blocks[ret_block].pc_of(ret_idx);
                (
                    BranchInfo {
                        kind: BranchKind::Return,
                        taken: true,
                        target: target_pc,
                    },
                    ret_block,
                    ret_idx,
                )
            }
            Terminator::Jump { target_block } => {
                let target_pc = self.code.blocks[target_block].start_pc;
                let _ = pc;
                (
                    BranchInfo {
                        kind: BranchKind::Jump,
                        taken: true,
                        target: target_pc,
                    },
                    target_block,
                    0,
                )
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Static layout construction
// ---------------------------------------------------------------------------

/// Tracks recently written registers during static construction so sources
/// can be wired to producers at a controlled distance.
struct WriterHistory {
    int: Vec<ArchReg>,
    fp: Vec<ArchReg>,
}

impl WriterHistory {
    fn new() -> WriterHistory {
        WriterHistory {
            int: Vec::new(),
            fp: Vec::new(),
        }
    }

    fn record(&mut self, reg: ArchReg) {
        match reg.file() {
            RegFileKind::Int => self.int.push(reg),
            RegFileKind::Fp => self.fp.push(reg),
        }
    }

    fn recent(&self, file: RegFileKind, back: usize) -> Option<ArchReg> {
        let v = match file {
            RegFileKind::Int => &self.int,
            RegFileKind::Fp => &self.fp,
        };
        if v.is_empty() {
            None
        } else {
            let idx = v.len().saturating_sub(back.max(1));
            v.get(idx).copied()
        }
    }

    fn last_load_dest(&self, file: RegFileKind) -> Option<ArchReg> {
        self.recent(file, 1)
    }
}

struct Builder<'a> {
    profile: &'a BenchmarkProfile,
    rng: &'a mut SmallRng,
    next_int_dest: u8,
    next_fp_dest: u8,
    mem_sites: usize,
    /// Execution-frequency weight already assigned per region (hot, warm,
    /// cold) — see [`Builder::pick_region`].
    region_weights: [f64; 3],
}

impl Builder<'_> {
    fn global(&mut self, file: RegFileKind) -> ArchReg {
        match file {
            RegFileKind::Int => {
                ArchReg::int(self.rng.gen_range(INT_GLOBALS.start..INT_GLOBALS.end))
            }
            RegFileKind::Fp => ArchReg::fp(self.rng.gen_range(FP_GLOBALS.start..FP_GLOBALS.end)),
        }
    }

    fn next_dest(&mut self, file: RegFileKind) -> ArchReg {
        match file {
            RegFileKind::Int => {
                let r = ArchReg::int(self.next_int_dest);
                self.next_int_dest += 1;
                if self.next_int_dest >= INT_POOL.end {
                    self.next_int_dest = INT_POOL.start;
                }
                r
            }
            RegFileKind::Fp => {
                let r = ArchReg::fp(self.next_fp_dest);
                self.next_fp_dest += 1;
                if self.next_fp_dest >= FP_POOL.end {
                    self.next_fp_dest = FP_POOL.start;
                }
                r
            }
        }
    }

    /// Choose a source register of `file`, honouring the dependence model.
    fn pick_src(&mut self, history: &WriterHistory, file: RegFileKind) -> ArchReg {
        if self.rng.gen_bool(self.profile.deps.long_range_fraction) {
            return self.global(file);
        }
        // Geometric distance with the configured mean (>= 1).
        let p = 1.0 / self.profile.deps.mean_distance;
        let mut d = 1usize;
        while !self.rng.gen_bool(p) && d < 64 {
            d += 1;
        }
        history.recent(file, d).unwrap_or_else(|| self.global(file))
    }

    /// Source register for a branch condition. Branch conditions are
    /// usually induction variables or other early-resolving values (loop
    /// bounds), so they mostly read long-lived globals; only a minority
    /// test freshly computed data.
    fn pick_branch_src(&mut self, history: &WriterHistory) -> ArchReg {
        if self.rng.gen_bool(0.6) {
            self.global(RegFileKind::Int)
        } else {
            self.pick_src(history, RegFileKind::Int)
        }
    }

    fn new_mem_site(&mut self, region: Region, chase: bool) -> MemSite {
        let idx = self.mem_sites;
        self.mem_sites += 1;
        let region_bytes = match region {
            Region::Hot => self.profile.memory.hot_bytes,
            Region::Warm => self.profile.memory.warm_bytes,
            Region::Cold => self.profile.memory.cold_bytes,
        };
        // Per-site slice sizing controls the reuse distance and therefore
        // which level the site's data stays resident in:
        // hot = small, dense walk (L1-resident); warm = larger than an L1
        // share but L2-resident; cold/chase = the whole region (no reuse
        // before eviction: every pass misses to memory).
        let (stride, span) = match region {
            // Hot: a few cache lines with rapid wraparound -> temporal
            // reuse keeps the slice L1-resident (accumulators, small
            // arrays).
            Region::Hot => (8u64, 256.min(region_bytes)),
            // Warm/cold walk sequentially through doubles: four accesses
            // share each 32-byte line (spatial locality of real array
            // code), so one access in four misses.
            Region::Warm => (8, (128 << 10).min(region_bytes)),
            Region::Cold => (8, region_bytes),
        };
        let (base, span) = if chase || span >= region_bytes {
            (0, region_bytes)
        } else {
            let slots = (region_bytes - span) / 8;
            (self.rng.gen_range(0..=slots) * 8, span)
        };
        MemSite {
            region,
            base,
            span,
            stride,
            chase,
            counter_idx: idx,
        }
    }

    /// Assign a memory site to a region so that the *dynamic* (execution
    /// frequency weighted) access fractions track the profile's
    /// `p_hot`/`p_warm` targets. A greedy deficit rule is used instead of
    /// random sampling because loop-resident sites execute `trip`× more
    /// often than straight-line sites; unweighted sampling would make the
    /// realised miss rate depend wildly on where the cold sites happen to
    /// land.
    fn pick_region(&mut self, weight: f64) -> Region {
        let m = &self.profile.memory;
        let targets = [m.p_hot, m.p_warm, (1.0 - m.p_hot - m.p_warm).max(0.0)];
        let total: f64 = self.region_weights.iter().sum::<f64>() + weight;
        let mut best = 0usize;
        let mut best_deficit = f64::MIN;
        for (r, &target) in targets.iter().enumerate() {
            if target <= 0.0 {
                continue;
            }
            let deficit = target - self.region_weights[r] / total;
            if deficit > best_deficit {
                best_deficit = deficit;
                best = r;
            }
        }
        self.region_weights[best] += weight;
        [Region::Hot, Region::Warm, Region::Cold][best]
    }

    /// Destination register file for a load in this profile: FP benchmarks
    /// load FP data about as often as their FP fraction suggests.
    fn load_dest_file(&mut self) -> RegFileKind {
        let fp_ratio = self.profile.mix.fp_fraction() * 2.0;
        if fp_ratio > 0.0 && self.rng.gen_bool(fp_ratio.min(0.6)) {
            RegFileKind::Fp
        } else {
            RegFileKind::Int
        }
    }
}

fn op_file(class: OpClass) -> RegFileKind {
    if class.is_fp() {
        RegFileKind::Fp
    } else {
        RegFileKind::Int
    }
}

fn build_static_code(profile: &BenchmarkProfile, rng: &mut SmallRng) -> StaticCode {
    let mut b = Builder {
        profile,
        rng,
        next_int_dest: INT_POOL.start,
        next_fp_dest: FP_POOL.start,
        mem_sites: 0,
        region_weights: [0.0; 3],
    };

    let total_blocks = profile.code_blocks;
    // Functions take ~1/4 of blocks when calls are modelled, 3 blocks each.
    let func_count = if profile.branches.call_fraction > 0.0 {
        (total_blocks / 12).max(1)
    } else {
        0
    };
    let func_blocks = func_count * 3;
    let main_blocks = total_blocks.saturating_sub(func_blocks).max(2);

    let avg_body = (profile.avg_block_len() - 1.0).max(1.0);
    let mut blocks = Vec::with_capacity(main_blocks + func_blocks);
    let mut next_pc = CODE_BASE;

    // Closure-free helper: builds the body of one block.
    let build_body =
        |b: &mut Builder<'_>, body_len: usize, weight: f64| -> (Vec<StaticInst>, WriterHistory) {
            let mut insts = Vec::with_capacity(body_len + 1);
            let mut history = WriterHistory::new();
            for _ in 0..body_len {
                let u = b.rng.gen_f64();
                let class = b.profile.mix.sample_non_branch(u);
                match class {
                    OpClass::Load => {
                        let region = b.pick_region(weight);
                        let chase = b.rng.gen_bool(b.profile.memory.pointer_chase);
                        let base = if chase {
                            // Address depends on a previously loaded value.
                            history
                                .last_load_dest(RegFileKind::Int)
                                .unwrap_or_else(|| b.global(RegFileKind::Int))
                        } else {
                            b.global(RegFileKind::Int)
                        };
                        let site = b.new_mem_site(region, chase);
                        let dest_file = b.load_dest_file();
                        let dest = b.next_dest(dest_file);
                        insts.push(StaticInst::Load { dest, base, site });
                        history.record(dest);
                    }
                    OpClass::Store => {
                        let region = b.pick_region(weight);
                        let site = b.new_mem_site(region, false);
                        let base = b.global(RegFileKind::Int);
                        let data_file = if b.profile.mix.fp_fraction() > 0.0 && b.rng.gen_bool(0.4)
                        {
                            RegFileKind::Fp
                        } else {
                            RegFileKind::Int
                        };
                        let data = b.pick_src(&history, data_file);
                        insts.push(StaticInst::Store { data, base, site });
                    }
                    class => {
                        let file = op_file(class);
                        let dest = b.next_dest(file);
                        let s0 = b.pick_src(&history, file);
                        let s1 = if b.rng.gen_bool(0.7) {
                            Some(b.pick_src(&history, file))
                        } else {
                            None
                        };
                        insts.push(StaticInst::Op {
                            class,
                            dest,
                            srcs: [Some(s0), s1],
                        });
                        history.record(dest);
                    }
                }
            }
            (insts, history)
        };

    // Helper to sample a body length around the profile average (>= 1).
    fn sample_body_len(rng: &mut SmallRng, avg: f64) -> usize {
        let lo = (avg * 0.5).max(1.0) as usize;
        let hi = (avg * 1.5).max(2.0) as usize;
        rng.gen_range(lo..=hi)
    }

    // --- main region ---
    // Terminators are chosen before bodies so that a block's execution
    // weight (its loop trip count) can steer region assignment.
    for i in 0..main_blocks {
        let term = if i + 1 == main_blocks {
            Terminator::Jump { target_block: 0 }
        } else {
            let u = b.rng.gen_f64();
            let br = &profile.branches;
            if u < br.loop_fraction {
                let lo = (br.avg_trip / 2).max(2);
                let hi = (br.avg_trip * 3 / 2).max(3);
                Terminator::LoopBack {
                    trip: b.rng.gen_range(lo..=hi),
                }
            } else if u < br.loop_fraction + br.call_fraction && func_count > 0 {
                let f = b.rng.gen_range(0..func_count);
                Terminator::Call {
                    func_block: main_blocks + f * 3,
                }
            } else {
                // Taken path skips the next block (stays in the main region).
                let taken_block = if i + 2 < main_blocks { i + 2 } else { 0 };
                Terminator::Biased {
                    taken_prob: site_bias(b.rng, br.biased_taken_prob),
                    taken_block,
                }
            }
        };
        let weight = match term {
            Terminator::LoopBack { trip } => f64::from(trip),
            _ => 1.0,
        };
        let body_len = sample_body_len(b.rng, avg_body);
        let (mut insts, history) = build_body(&mut b, body_len, weight);
        let src = b.pick_branch_src(&history);
        insts.push(StaticInst::Branch { src, term });
        let start_pc = next_pc;
        next_pc += 4 * insts.len() as u64;
        blocks.push(Block { start_pc, insts });
    }

    // --- functions: 3 blocks each, last block returns ---
    for f in 0..func_count {
        let first = main_blocks + f * 3;
        for j in 0..3 {
            let term = if j == 2 {
                Terminator::Return
            } else if b.rng.gen_bool(0.5) {
                let lo = (profile.branches.avg_trip / 2).max(2);
                let hi = (profile.branches.avg_trip * 3 / 2).max(3);
                Terminator::LoopBack {
                    trip: b.rng.gen_range(lo..=hi),
                }
            } else {
                Terminator::Biased {
                    taken_prob: site_bias(b.rng, profile.branches.biased_taken_prob),
                    // Taken path goes straight to the return block.
                    taken_block: first + 2,
                }
            };
            let weight = match term {
                Terminator::LoopBack { trip } => f64::from(trip),
                _ => 1.0,
            };
            let body_len = sample_body_len(b.rng, avg_body);
            let (mut insts, history) = build_body(&mut b, body_len, weight);
            let src = b.pick_branch_src(&history);
            insts.push(StaticInst::Branch { src, term });
            let start_pc = next_pc;
            next_pc += 4 * insts.len() as u64;
            blocks.push(Block { start_pc, insts });
        }
    }

    StaticCode {
        blocks,
        mem_sites: b.mem_sites,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Spec2000;

    fn workload(name: &str, seed: u64) -> SyntheticWorkload {
        SyntheticWorkload::new(Spec2000::by_name(name).expect("benchmark exists"), seed)
    }

    #[test]
    fn determinism() {
        let mut a = workload("gcc", 7);
        let mut b = workload("gcc", 7);
        for _ in 0..5_000 {
            assert_eq!(a.next_inst(), b.next_inst());
        }
        assert_eq!(a.emitted(), 5_000);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = workload("gcc", 1);
        let mut b = workload("gcc", 2);
        let same = (0..1000).filter(|_| a.next_inst() == b.next_inst()).count();
        assert!(same < 1000, "streams with different seeds must diverge");
    }

    #[test]
    fn stream_is_sequentially_consistent() {
        let mut w = workload("vortex", 3);
        let mut prev = w.next_inst();
        for _ in 0..20_000 {
            let next = w.next_inst();
            assert_eq!(
                next.pc,
                prev.successor_pc(),
                "instruction at {:#x} must follow {:#x}",
                next.pc,
                prev.pc
            );
            prev = next;
        }
    }

    #[test]
    fn all_instructions_well_formed() {
        let mut w = workload("equake", 11);
        for _ in 0..20_000 {
            assert!(w.next_inst().is_well_formed());
        }
    }

    #[test]
    fn mix_tracks_profile() {
        let profile = Spec2000::by_name("swim").expect("exists");
        let mut w = SyntheticWorkload::new(profile, 5);
        let n = 100_000;
        let mut counts = [0usize; OpClass::COUNT];
        for _ in 0..n {
            counts[w.next_inst().op.index()] += 1;
        }
        for op in OpClass::ALL {
            let got = counts[op.index()] as f64 / n as f64;
            let want = profile.mix.fraction(op);
            assert!(
                (got - want).abs() < 0.05,
                "{op}: profile says {want:.3}, stream delivered {got:.3}"
            );
        }
    }

    #[test]
    fn addresses_stay_in_their_regions() {
        let mut w = workload("mcf", 9);
        for _ in 0..50_000 {
            let inst = w.next_inst();
            if let Some(mem) = inst.mem {
                let p = w.profile();
                let in_hot = (HOT_BASE..HOT_BASE + p.memory.hot_bytes).contains(&mem.addr);
                let in_warm = (WARM_BASE..WARM_BASE + p.memory.warm_bytes).contains(&mem.addr);
                let in_cold = (COLD_BASE..COLD_BASE + p.memory.cold_bytes).contains(&mem.addr);
                assert!(
                    in_hot || in_warm || in_cold,
                    "address {:#x} escapes all regions",
                    mem.addr
                );
            }
        }
    }

    #[test]
    fn code_footprint_is_bounded() {
        let w = workload("gzip", 1);
        let approx = w.profile().code_blocks as f64 * w.profile().avg_block_len() * 1.6;
        assert!(
            (w.static_code_size() as f64) < approx,
            "static code unexpectedly large: {}",
            w.static_code_size()
        );
    }

    #[test]
    fn calls_and_returns_balance() {
        let mut w = workload("perlbmk", 13);
        let mut depth: i64 = 0;
        for _ in 0..50_000 {
            let inst = w.next_inst();
            if let Some(b) = inst.branch {
                match b.kind {
                    BranchKind::Call => depth += 1,
                    BranchKind::Return => depth -= 1,
                    _ => {}
                }
                assert!(depth >= 0, "return without call");
                assert!(depth <= 64, "unbounded call depth");
            }
        }
    }
}
