//! Calibrated profiles for the paper's SPEC2000 subset.
//!
//! The paper reports per-benchmark bars for a subset of SPEC2000 and names
//! three explicitly: `mcf` and `lucas` ("stall frequently due to unusually
//! high cache miss rates") and `perlbmk` ("high utilization of the integer
//! units, seldom use the FP units"). The remaining profiles are calibrated
//! to published SPEC2000 characterisation data (instruction mixes, branch
//! misprediction rates, cache behaviour). Absolute fidelity to any single
//! machine is neither possible nor required — the experiments depend on the
//! *relative* utilization patterns, which these profiles reproduce:
//!
//! * integer benchmarks: no FP work, branchy, ~45-60 % integer-ALU ops;
//! * FP benchmarks: ~33-45 % FP ops, few branches, long predictable loops;
//! * `mcf`: pointer chasing over a huge working set (very low IPC);
//! * `lucas`: streaming FP access pattern far exceeding the L2.

use crate::{BenchmarkProfile, BranchModel, DepModel, MemoryModel, OpMix, SuiteKind};

/// The SPEC2000 subset used throughout the experiments.
///
/// # Example
///
/// ```
/// use dcg_workloads::{Spec2000, SuiteKind};
///
/// assert_eq!(Spec2000::integer().len(), 9);
/// assert_eq!(Spec2000::floating_point().len(), 9);
/// let mcf = Spec2000::by_name("mcf").unwrap();
/// assert_eq!(mcf.suite, SuiteKind::Int);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Spec2000;

macro_rules! profile {
    (
        $name:literal, $suite:ident,
        mix: [$ia:expr, $im:expr, $id:expr, $fa:expr, $fm:expr, $fd:expr, $ld:expr, $st:expr, $br:expr],
        branches: [$loopf:expr, $trip:expr, $bias:expr, $call:expr],
        memory: [$hot:expr, $warm:expr, $cold:expr, $phot:expr, $pwarm:expr, $chase:expr],
        deps: [$dist:expr, $long:expr],
        blocks: $blocks:expr
    ) => {
        BenchmarkProfile {
            name: $name,
            suite: SuiteKind::$suite,
            mix: OpMix::from_parts($ia, $im, $id, $fa, $fm, $fd, $ld, $st, $br),
            branches: BranchModel {
                loop_fraction: $loopf,
                avg_trip: $trip,
                biased_taken_prob: $bias,
                call_fraction: $call,
            },
            memory: MemoryModel {
                hot_bytes: $hot,
                warm_bytes: $warm,
                cold_bytes: $cold,
                p_hot: $phot,
                p_warm: $pwarm,
                pointer_chase: $chase,
            },
            deps: DepModel {
                mean_distance: $dist,
                long_range_fraction: $long,
            },
            code_blocks: $blocks,
        }
    };
}

const KB: u64 = 1 << 10;
const MB: u64 = 1 << 20;

impl Spec2000 {
    /// The SPECint2000 benchmarks in the subset.
    pub fn integer() -> Vec<BenchmarkProfile> {
        vec![
            profile!("bzip2", Int,
                mix: [0.535, 0.015, 0.003, 0.0, 0.0, 0.0, 0.21, 0.10, 0.137],
                branches: [0.55, 24, 0.75, 0.04],
                memory: [40 * KB, MB, 32 * MB, 0.965, 0.03, 0.02],
                deps: [5.0, 0.38], blocks: 96),
            profile!("gcc", Int,
                mix: [0.52, 0.01, 0.002, 0.0, 0.0, 0.0, 0.22, 0.095, 0.153],
                branches: [0.35, 10, 0.62, 0.12],
                memory: [32 * KB, 3 * MB / 2, 64 * MB, 0.93, 0.06, 0.05],
                deps: [4.5, 0.33], blocks: 256),
            profile!("gzip", Int,
                mix: [0.55, 0.01, 0.002, 0.0, 0.0, 0.0, 0.19, 0.108, 0.14],
                branches: [0.60, 20, 0.80, 0.03],
                memory: [48 * KB, 256 * KB, 16 * MB, 0.977, 0.02, 0.01],
                deps: [5.0, 0.40], blocks: 64),
            profile!("mcf", Int,
                mix: [0.42, 0.005, 0.002, 0.0, 0.0, 0.0, 0.31, 0.083, 0.18],
                branches: [0.30, 8, 0.55, 0.05],
                memory: [24 * KB, 2 * MB, 192 * MB, 0.45, 0.15, 0.45],
                deps: [2.5, 0.20], blocks: 128),
            profile!("parser", Int,
                mix: [0.51, 0.008, 0.002, 0.0, 0.0, 0.0, 0.22, 0.10, 0.16],
                branches: [0.35, 8, 0.60, 0.10],
                memory: [32 * KB, MB, 48 * MB, 0.94, 0.05, 0.08],
                deps: [4.0, 0.30], blocks: 96),
            profile!("perlbmk", Int,
                mix: [0.53, 0.008, 0.002, 0.0, 0.0, 0.0, 0.21, 0.11, 0.14],
                branches: [0.30, 8, 0.65, 0.22],
                memory: [40 * KB, MB, 32 * MB, 0.965, 0.03, 0.04],
                deps: [4.5, 0.35], blocks: 128),
            profile!("twolf", Int,
                mix: [0.50, 0.02, 0.005, 0.0, 0.0, 0.0, 0.23, 0.095, 0.15],
                branches: [0.40, 12, 0.60, 0.06],
                memory: [32 * KB, 3 * MB / 2, 32 * MB, 0.92, 0.07, 0.06],
                deps: [4.0, 0.30], blocks: 96),
            profile!("vortex", Int,
                mix: [0.52, 0.006, 0.002, 0.0, 0.0, 0.0, 0.24, 0.112, 0.12],
                branches: [0.35, 10, 0.70, 0.18],
                memory: [48 * KB, 2 * MB, 48 * MB, 0.955, 0.04, 0.03],
                deps: [5.0, 0.38], blocks: 192),
            profile!("vpr", Int,
                mix: [0.51, 0.012, 0.003, 0.0, 0.0, 0.0, 0.22, 0.095, 0.16],
                branches: [0.45, 14, 0.62, 0.05],
                memory: [32 * KB, MB, 32 * MB, 0.94, 0.05, 0.05],
                deps: [4.0, 0.32], blocks: 96),
        ]
    }

    /// The SPECfp2000 benchmarks in the subset.
    pub fn floating_point() -> Vec<BenchmarkProfile> {
        vec![
            profile!("applu", Fp,
                mix: [0.24, 0.005, 0.002, 0.17, 0.155, 0.012, 0.26, 0.116, 0.04],
                branches: [0.80, 48, 0.80, 0.02],
                memory: [48 * KB, 3 * MB / 2, 64 * MB, 0.90, 0.08, 0.0],
                deps: [5.0, 0.45], blocks: 96),
            profile!("apsi", Fp,
                mix: [0.27, 0.01, 0.002, 0.16, 0.13, 0.01, 0.25, 0.108, 0.06],
                branches: [0.70, 32, 0.75, 0.04],
                memory: [40 * KB, MB, 48 * MB, 0.93, 0.06, 0.01],
                deps: [4.5, 0.40], blocks: 96),
            profile!("art", Fp,
                mix: [0.26, 0.004, 0.001, 0.20, 0.11, 0.005, 0.28, 0.07, 0.07],
                branches: [0.75, 40, 0.70, 0.01],
                memory: [16 * KB, 512 * KB, 96 * MB, 0.70, 0.20, 0.02],
                deps: [4.0, 0.35], blocks: 64),
            profile!("equake", Fp,
                mix: [0.25, 0.005, 0.002, 0.16, 0.13, 0.01, 0.29, 0.093, 0.06],
                branches: [0.70, 24, 0.70, 0.03],
                memory: [32 * KB, MB, 64 * MB, 0.87, 0.10, 0.06],
                deps: [4.0, 0.35], blocks: 96),
            profile!("lucas", Fp,
                mix: [0.20, 0.004, 0.001, 0.17, 0.17, 0.005, 0.28, 0.13, 0.04],
                branches: [0.85, 64, 0.80, 0.0],
                memory: [24 * KB, MB, 256 * MB, 0.60, 0.20, 0.0],
                deps: [3.5, 0.30], blocks: 48),
            profile!("mesa", Fp,
                mix: [0.34, 0.01, 0.003, 0.14, 0.10, 0.007, 0.23, 0.09, 0.08],
                branches: [0.50, 16, 0.70, 0.12],
                memory: [48 * KB, 512 * KB, 16 * MB, 0.975, 0.02, 0.02],
                deps: [4.5, 0.38], blocks: 96),
            profile!("mgrid", Fp,
                mix: [0.22, 0.004, 0.001, 0.19, 0.16, 0.005, 0.30, 0.08, 0.04],
                branches: [0.85, 96, 0.85, 0.0],
                memory: [48 * KB, 2 * MB, 64 * MB, 0.91, 0.07, 0.0],
                deps: [5.0, 0.45], blocks: 48),
            profile!("swim", Fp,
                mix: [0.21, 0.004, 0.001, 0.18, 0.16, 0.005, 0.29, 0.11, 0.04],
                branches: [0.85, 64, 0.80, 0.0],
                memory: [32 * KB, 3 * MB / 2, 128 * MB, 0.77, 0.15, 0.0],
                deps: [5.0, 0.42], blocks: 48),
            profile!("wupwise", Fp,
                mix: [0.25, 0.005, 0.002, 0.16, 0.17, 0.013, 0.25, 0.10, 0.05],
                branches: [0.70, 32, 0.75, 0.10],
                memory: [40 * KB, MB, 32 * MB, 0.95, 0.04, 0.01],
                deps: [4.5, 0.40], blocks: 96),
        ]
    }

    /// Every benchmark in the subset (integer first, then FP).
    pub fn all() -> Vec<BenchmarkProfile> {
        let mut v = Self::integer();
        v.extend(Self::floating_point());
        v
    }

    /// Look a benchmark up by name.
    pub fn by_name(name: &str) -> Option<BenchmarkProfile> {
        Self::all().into_iter().find(|p| p.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_validate() {
        for p in Spec2000::all() {
            p.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn suite_sizes_and_uniqueness() {
        let all = Spec2000::all();
        assert_eq!(all.len(), 18);
        let names: std::collections::HashSet<_> = all.iter().map(|p| p.name).collect();
        assert_eq!(names.len(), 18, "benchmark names must be unique");
    }

    #[test]
    fn suites_are_typed_correctly() {
        for p in Spec2000::integer() {
            assert_eq!(p.suite, SuiteKind::Int, "{}", p.name);
            assert_eq!(p.mix.fp_fraction(), 0.0, "{} must have no FP work", p.name);
        }
        for p in Spec2000::floating_point() {
            assert_eq!(p.suite, SuiteKind::Fp, "{}", p.name);
            assert!(
                p.mix.fp_fraction() > 0.2,
                "{} must have substantial FP work",
                p.name
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(Spec2000::by_name("mcf").is_some());
        assert!(Spec2000::by_name("lucas").is_some());
        assert!(Spec2000::by_name("doom3").is_none());
    }

    #[test]
    fn stall_benchmarks_have_large_cold_fractions() {
        // The paper singles out mcf and lucas as the highest-saving
        // benchmarks because they stall on cache misses (§5.1).
        for name in ["mcf", "lucas"] {
            let p = Spec2000::by_name(name).unwrap();
            let p_cold = 1.0 - p.memory.p_hot - p.memory.p_warm;
            assert!(
                p_cold + p.memory.pointer_chase >= 0.2,
                "{name} must be miss-dominated"
            );
            assert!(p.memory.cold_bytes > 100 * (1 << 20));
        }
    }

    #[test]
    fn perlbmk_is_integer_heavy() {
        let p = Spec2000::by_name("perlbmk").unwrap();
        assert_eq!(p.mix.fp_fraction(), 0.0);
        assert!(p.mix.fraction(dcg_isa::OpClass::IntAlu) > 0.5);
    }

    #[test]
    fn fp_benchmarks_have_long_loops() {
        for p in Spec2000::floating_point() {
            assert!(
                p.branches.loop_fraction >= 0.5,
                "{} should be loop-dominated",
                p.name
            );
        }
    }
}
