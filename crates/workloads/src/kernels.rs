//! Real-program kernels: checked-in assembly sources, their expected
//! final states, and the [`ProgramStream`] adapter that feeds an emulated
//! program to the pipeline.
//!
//! The kernels sit beside the synthetic SPEC profiles as the second
//! workload family: where [`crate::SyntheticWorkload`] produces
//! statistically-shaped streams, a kernel's idleness pattern is the
//! product of real control and data flow. Each kernel ends in `halt`;
//! because [`crate::InstStream`]s are unbounded, [`ProgramStream`] keeps
//! emitting the halt instruction's self-loop jump after the program
//! finishes, so experiment windows longer than the program still run.
//!
//! Every kernel carries a Rust *oracle* mirroring its data generation, so
//! [`Kernel::verify_final_state`] checks semantic results (sortedness,
//! matrix entries, match indices) against an independent recomputation —
//! not against numbers frozen from a previous emulator run.

use dcg_emu::{assemble, CommitRecord, Emulator, Program};
use dcg_isa::{ArchReg, Inst};

use crate::stream::InstStream;

/// The six checked-in kernels, in registry order.
const SOURCES: [(&str, &str); 6] = [
    ("memfill", include_str!("../kernels/memfill.asm")),
    ("matmul", include_str!("../kernels/matmul.asm")),
    ("strsearch", include_str!("../kernels/strsearch.asm")),
    ("sort", include_str!("../kernels/sort.asm")),
    ("ptrchase", include_str!("../kernels/ptrchase.asm")),
    ("rle", include_str!("../kernels/rle.asm")),
];

/// Generous per-kernel step budget: every kernel halts well under this.
pub const KERNEL_STEP_LIMIT: u64 = 2_000_000;

/// A checked-in real-program kernel.
#[derive(Debug, Clone, Copy)]
pub struct Kernel {
    /// Registry name (also the workload name reported by its stream).
    pub name: &'static str,
    /// The assembly source text.
    pub source: &'static str,
}

impl Kernel {
    /// All kernels in registry order.
    pub fn all() -> Vec<Kernel> {
        SOURCES
            .iter()
            .map(|(name, source)| Kernel { name, source })
            .collect()
    }

    /// Look up a kernel by name.
    pub fn by_name(name: &str) -> Option<Kernel> {
        Self::all().into_iter().find(|k| k.name == name)
    }

    /// Assemble the kernel's source.
    ///
    /// # Panics
    ///
    /// Panics if a checked-in kernel fails to assemble — that is a broken
    /// commit, not a runtime condition.
    pub fn assemble(&self) -> Program {
        match assemble(self.name, self.source) {
            Ok(p) => p,
            Err(e) => panic!("checked-in kernel `{}` does not assemble: {e}", self.name),
        }
    }

    /// Run the kernel to completion on the functional emulator, returning
    /// the final machine state and every commit record.
    ///
    /// # Panics
    ///
    /// Panics if the kernel faults or fails to halt — checked-in kernels
    /// must run clean.
    pub fn emulate(&self) -> (Emulator, Vec<CommitRecord>) {
        let mut emu = Emulator::new(self.assemble());
        match emu.run(KERNEL_STEP_LIMIT) {
            Ok(records) => (emu, records),
            Err(e) => panic!("kernel `{}` failed under emulation: {e}", self.name),
        }
    }

    /// An unbounded instruction stream executing this kernel.
    pub fn stream(&self) -> ProgramStream {
        ProgramStream::new(self.assemble())
    }

    /// Check the emulator's final architectural state against this
    /// kernel's Rust oracle.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatch.
    pub fn verify_final_state(&self, emu: &Emulator) -> Result<(), String> {
        match self.name {
            "memfill" => verify_memfill(emu),
            "matmul" => verify_matmul(emu),
            "strsearch" => verify_strsearch(emu),
            "sort" => verify_sort(emu),
            "ptrchase" => verify_ptrchase(emu),
            "rle" => verify_rle(emu),
            other => Err(format!("kernel `{other}` has no oracle")),
        }
    }
}

fn expect_mem(emu: &Emulator, addr: u64, size: u8, want: u64, what: &str) -> Result<(), String> {
    let got = emu.mem().read(addr, size);
    if got == want {
        Ok(())
    } else {
        Err(format!(
            "{what}: memory[{addr:#x}..+{size}] = {got:#x}, expected {want:#x}"
        ))
    }
}

fn expect_reg(emu: &Emulator, reg: ArchReg, want: u64, what: &str) -> Result<(), String> {
    let got = emu.reg(reg);
    if got == want {
        Ok(())
    } else {
        Err(format!("{what}: {reg} = {got:#x}, expected {want:#x}"))
    }
}

fn verify_memfill(emu: &Emulator) -> Result<(), String> {
    for i in 0..4096u64 {
        let want = (i + 1) & 0xff;
        expect_mem(emu, 0x10000 + i, 1, want, "memfill dst")?;
        expect_mem(emu, 0x18000 + i, 1, want, "memfill copy")?;
    }
    Ok(())
}

fn verify_matmul(emu: &Emulator) -> Result<(), String> {
    let a: Vec<f64> = (0..144).map(|k| ((k * 7) % 13) as f64).collect();
    let b: Vec<f64> = (0..144).map(|k| ((k * 3) % 11) as f64).collect();
    for i in 0..12 {
        for j in 0..12 {
            // Same accumulation order as the kernel: k ascending.
            let mut acc = 0.0f64;
            for k in 0..12 {
                acc += a[i * 12 + k] * b[k * 12 + j];
            }
            expect_mem(
                emu,
                0x20000 + 8 * (i * 12 + j) as u64,
                8,
                acc.to_bits(),
                "matmul C entry",
            )?;
        }
    }
    Ok(())
}

fn strsearch_text() -> Vec<u8> {
    (0..2048u64).map(|i| ((i * 31 + 7) % 251) as u8).collect()
}

fn verify_strsearch(emu: &Emulator) -> Result<(), String> {
    let text = strsearch_text();
    let needle = &text[1900..1908];
    let mut count = 0u64;
    let mut first = -1i64;
    for i in 0..=(text.len() - 8) {
        if &text[i..i + 8] == needle {
            count += 1;
            if first < 0 {
                first = i as i64;
            }
        }
    }
    expect_reg(emu, ArchReg::int(20), count, "strsearch match count")?;
    expect_reg(emu, ArchReg::int(21), first as u64, "strsearch first match")?;
    Ok(())
}

fn sort_input() -> Vec<u64> {
    let mut x = 12345u64;
    (0..128)
        .map(|_| {
            x = (x.wrapping_mul(1_103_515_245).wrapping_add(12_345)) & 0xffff_ffff;
            x
        })
        .collect()
}

fn verify_sort(emu: &Emulator) -> Result<(), String> {
    let mut want = sort_input();
    want.sort_unstable();
    for (i, w) in want.iter().enumerate() {
        expect_mem(emu, 0x10000 + 8 * i as u64, 8, *w, "sorted element")?;
    }
    Ok(())
}

fn verify_ptrchase(emu: &Emulator) -> Result<(), String> {
    let mut sum = 0u64;
    let mut idx = 0u64;
    for _ in 0..4096 {
        sum = sum.wrapping_add(idx.wrapping_mul(idx));
        idx = (idx + 167) % 512;
    }
    expect_mem(emu, 0x18000, 8, sum, "ptrchase sum")
}

fn verify_rle(emu: &Emulator) -> Result<(), String> {
    let input: Vec<u8> = (0..2048u64)
        .map(|i| (((i >> 3) * 7) & 0xff) as u8)
        .collect();
    let mut pairs: Vec<(u8, u8)> = Vec::new();
    let mut i = 0;
    while i < input.len() {
        let v = input[i];
        let mut n = 0u8;
        while i < input.len() && input[i] == v {
            n += 1;
            i += 1;
        }
        pairs.push((n, v));
    }
    expect_mem(emu, 0x20000, 8, 2 * pairs.len() as u64, "rle output length")?;
    for (k, (n, v)) in pairs.iter().enumerate() {
        let base = 0x18000 + 2 * k as u64;
        expect_mem(emu, base, 1, u64::from(*n), "rle run length")?;
        expect_mem(emu, base + 1, 1, u64::from(*v), "rle run value")?;
    }
    Ok(())
}

/// An unbounded [`InstStream`] over a functionally-emulated [`Program`].
///
/// Each `next_inst` call commits one instruction on the internal
/// [`Emulator`] and hands the resolved dynamic [`Inst`] to the pipeline.
/// After `halt` commits, the stream repeats the halt instruction (a taken
/// self-loop jump) forever, so the simulator's fetch stage never starves.
///
/// With [`ProgramStream::with_log`], every [`CommitRecord`] is kept for
/// later inspection — the differential harness uses this to compare
/// architectural effects, not just instruction identity.
///
/// # Panics
///
/// `next_inst` panics if the program faults (escapes its text segment,
/// misaligns an access): a workload that cannot produce its next
/// instruction is a broken experiment, matching the synthetic generator's
/// panic-on-invalid behaviour.
#[derive(Debug)]
pub struct ProgramStream {
    name: String,
    emu: Emulator,
    spin: Option<Inst>,
    log: Option<Vec<CommitRecord>>,
}

impl ProgramStream {
    /// Stream `program` without keeping commit records.
    pub fn new(program: Program) -> ProgramStream {
        ProgramStream {
            name: program.name().to_string(),
            emu: Emulator::new(program),
            spin: None,
            log: None,
        }
    }

    /// Stream `program`, keeping every [`CommitRecord`] for
    /// [`ProgramStream::log`].
    pub fn with_log(program: Program) -> ProgramStream {
        ProgramStream {
            name: program.name().to_string(),
            emu: Emulator::new(program),
            spin: None,
            log: Some(Vec::new()),
        }
    }

    /// Commit records collected so far (empty unless constructed via
    /// [`ProgramStream::with_log`]). Post-halt spin instructions are not
    /// recorded.
    pub fn log(&self) -> &[CommitRecord] {
        self.log.as_deref().unwrap_or(&[])
    }

    /// The underlying emulator (architectural state so far).
    pub fn emulator(&self) -> &Emulator {
        &self.emu
    }

    /// `true` once the program has halted and the stream is spinning.
    pub fn halted(&self) -> bool {
        self.emu.halted()
    }
}

impl InstStream for ProgramStream {
    fn next_inst(&mut self) -> Inst {
        if let Some(spin) = self.spin {
            return spin;
        }
        match self.emu.step() {
            Ok(Some(record)) => {
                if self.emu.halted() {
                    // `halt` is a taken self-loop jump; repeat it forever.
                    self.spin = Some(record.inst);
                }
                if let Some(log) = &mut self.log {
                    log.push(record);
                }
                record.inst
            }
            Ok(None) => unreachable!("spin instruction is set when the emulator halts"),
            Err(e) => panic!("kernel `{}` faulted mid-stream: {e}", self.name),
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcg_isa::OpClass;

    #[test]
    fn all_kernels_assemble_run_and_verify() {
        let kernels = Kernel::all();
        assert_eq!(kernels.len(), 6);
        for k in kernels {
            let (emu, records) = k.emulate();
            assert!(
                records.len() >= 20_000,
                "kernel `{}` is too short for a measurement window: {} insts",
                k.name,
                records.len()
            );
            k.verify_final_state(&emu)
                .unwrap_or_else(|e| panic!("kernel `{}` final state: {e}", k.name));
        }
    }

    #[test]
    fn by_name_finds_each_kernel() {
        for k in Kernel::all() {
            assert_eq!(Kernel::by_name(k.name).unwrap().name, k.name);
        }
        assert!(Kernel::by_name("nope").is_none());
    }

    #[test]
    fn stream_matches_emulation_then_spins() {
        let k = Kernel::by_name("memfill").unwrap();
        let (_, records) = k.emulate();
        let mut stream = ProgramStream::with_log(k.assemble());
        let n = records.len();
        for (i, want) in records.iter().enumerate() {
            assert_eq!(stream.next_inst(), want.inst, "inst {i}");
        }
        assert!(stream.halted());
        assert_eq!(stream.log().len(), n);
        // Post-halt: the same taken self-loop jump forever.
        let spin = stream.next_inst();
        assert_eq!(spin.op, OpClass::Branch);
        let b = spin.branch.unwrap();
        assert!(b.taken);
        assert_eq!(b.target, spin.pc);
        assert_eq!(stream.next_inst(), spin);
        assert_eq!(stream.log().len(), n, "spin insts are not logged");
    }

    #[test]
    fn streams_are_deterministic() {
        let k = Kernel::by_name("rle").unwrap();
        let mut a = k.stream();
        let mut b = k.stream();
        for _ in 0..1000 {
            assert_eq!(a.next_inst(), b.next_inst());
        }
        assert_eq!(a.name(), "rle");
    }
}
