; strsearch: generate 2 KiB of pseudo-random text, plant an 8-byte needle
; (a copy of text[1900..1908]), then naively scan every position counting
; matches and recording the first match index.
;
; Final state: r20 = match count, r21 = first match index.
    li r10, 0x10000   ; text
    li r11, 0x18000   ; needle
    li r13, 251
    li r1, 0          ; i
    li r2, 2048
gen:
    mul r3, r1, 31
    add r3, r3, 7
    rem r3, r3, r13   ; text[i] = (i*31 + 7) mod 251
    add r4, r10, r1
    stb r3, 0(r4)
    add r1, r1, 1
    bne r1, r2, gen
    li r1, 0
    li r5, 8
copyn:
    add r3, r10, r1
    ldb r4, 1900(r3)
    add r3, r11, r1
    stb r4, 0(r3)
    add r1, r1, 1
    bne r1, r5, copyn
    li r1, 0          ; position
    li r2, 2041       ; 2048 - 8 + 1
    li r20, 0         ; match count
    li r21, -1        ; first match index (-1 = none yet)
scan:
    li r3, 0          ; j
inner:
    add r4, r10, r1
    add r4, r4, r3
    ldb r6, 0(r4)
    add r7, r11, r3
    ldb r8, 0(r7)
    bne r6, r8, nomatch
    add r3, r3, 1
    bne r3, r5, inner
    add r20, r20, 1   ; full needle matched
    bge r21, r31, nomatch
    mov r21, r1       ; record first match
nomatch:
    add r1, r1, 1
    bne r1, r2, scan
    halt
