; matmul: 12x12 double-precision matrix multiply C = A * B.
; A[k] = itof((k * 7) mod 13), B[k] = itof((k * 3) mod 11), k = row*12+col.
;
; Final state: C at 0x20000, row-major f64.
    li r10, 0x10000   ; A
    li r11, 0x18000   ; B
    li r12, 0x20000   ; C
    li r13, 13
    li r14, 11
    li r15, 12
    li r1, 0          ; k
    li r2, 144
init:
    mul r3, r1, 7
    rem r3, r3, r13
    itof f1, r3
    sll r4, r1, 3
    add r5, r10, r4
    stq f1, 0(r5)
    mul r3, r1, 3
    rem r3, r3, r14
    itof f1, r3
    add r5, r11, r4
    stq f1, 0(r5)
    add r1, r1, 1
    bne r1, r2, init
    li r1, 0          ; i
iloop:
    li r2, 0          ; j
jloop:
    li r3, 0          ; k
    itof f3, r31      ; acc = 0.0
kloop:
    mul r4, r1, 12
    add r4, r4, r3
    sll r4, r4, 3
    add r4, r10, r4
    ldq f1, 0(r4)     ; A[i][k]
    mul r5, r3, 12
    add r5, r5, r2
    sll r5, r5, 3
    add r5, r11, r5
    ldq f2, 0(r5)     ; B[k][j]
    fmul f4, f1, f2
    fadd f3, f3, f4
    add r3, r3, 1
    bne r3, r15, kloop
    mul r4, r1, 12
    add r4, r4, r2
    sll r4, r4, 3
    add r4, r12, r4
    stq f3, 0(r4)     ; C[i][j]
    add r2, r2, 1
    bne r2, r15, jloop
    add r1, r1, 1
    bne r1, r15, iloop
    halt
