; sort: fill 128 u64s from a truncated LCG, then insertion-sort them
; in place (unsigned compares).
;
; Final state: a[0..128] at 0x10000 sorted ascending.
    li r10, 0x10000
    li r1, 0
    li r2, 128
    li r3, 12345      ; LCG state
fill:
    mul r3, r3, 1103515245
    add r3, r3, 12345
    and r3, r3, 0xffffffff
    sll r4, r1, 3
    add r5, r10, r4
    stq r3, 0(r5)
    add r1, r1, 1
    bne r1, r2, fill
    li r1, 1          ; i
outer:
    sll r4, r1, 3
    add r5, r10, r4
    ldq r6, 0(r5)     ; key = a[i]
    mov r7, r1        ; j
inner:
    sub r8, r7, 1
    sll r9, r8, 3
    add r9, r10, r9
    ldq r11, 0(r9)    ; a[j-1]
    bgeu r6, r11, place
    sll r12, r7, 3
    add r12, r10, r12
    stq r11, 0(r12)   ; a[j] = a[j-1]
    mov r7, r8
    bne r7, r31, inner
place:
    sll r12, r7, 3
    add r12, r10, r12
    stq r6, 0(r12)    ; a[j] = key
    add r1, r1, 1
    bne r1, r2, outer
    halt
