; ptrchase: build a 512-node linked list (16-byte nodes: value, next)
; whose next pointers follow a stride-167 permutation, then chase the
; chain for 4096 hops summing the values.
;
; Final state: the sum at 0x18000.
    li r10, 0x10000   ; nodes
    li r1, 0
    li r2, 512
    li r13, 167
build:
    sll r3, r1, 4
    add r3, r10, r3   ; &node[i]
    mul r4, r1, r1
    stq r4, 0(r3)     ; value = i*i
    add r5, r1, r13
    rem r5, r5, r2    ; next index = (i + 167) mod 512
    sll r5, r5, 4
    add r5, r10, r5
    stq r5, 8(r3)     ; next pointer
    add r1, r1, 1
    bne r1, r2, build
    li r20, 0         ; sum
    mov r6, r10       ; p = &node[0]
    li r1, 0
    li r2, 4096
chase:
    ldq r4, 0(r6)
    add r20, r20, r4
    ldq r6, 8(r6)     ; p = p->next
    add r1, r1, 1
    bne r1, r2, chase
    li r7, 0x18000
    stq r20, 0(r7)
    halt
