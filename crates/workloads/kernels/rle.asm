; rle: generate 2 KiB of input built from 8-byte runs, then run-length
; encode it into (count, value) byte pairs.
;
; Final state: pairs at 0x18000, encoded length (in bytes) at 0x20000.
    li r10, 0x10000   ; input
    li r11, 0x18000   ; output
    li r1, 0
    li r2, 2048
gen:
    srl r3, r1, 3
    mul r3, r3, 7
    and r3, r3, 0xff  ; input[i] = ((i >> 3) * 7) & 0xff
    add r4, r10, r1
    stb r3, 0(r4)
    add r1, r1, 1
    bne r1, r2, gen
    li r1, 0          ; read position
    li r5, 0          ; write position
enc:
    add r4, r10, r1
    ldb r6, 0(r4)     ; run value
    li r7, 0          ; run length
run:
    add r7, r7, 1
    add r1, r1, 1
    bge r1, r2, flush
    add r4, r10, r1
    ldb r8, 0(r4)
    beq r8, r6, run
flush:
    add r9, r11, r5
    stb r7, 0(r9)
    stb r6, 1(r9)
    add r5, r5, 2
    blt r1, r2, enc
    li r4, 0x20000
    stq r5, 0(r4)
    halt
