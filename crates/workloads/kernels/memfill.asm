; memfill: memset a 4 KiB buffer with a round-dependent byte pattern,
; then memcpy it 8 bytes at a time into a second buffer. Two rounds.
;
; Final state: dst[i] = copy[i] = (i + 1) & 0xff for i in 0..4096.
    li r1, 2          ; rounds remaining
    li r10, 0x10000   ; dst
    li r11, 0x18000   ; copy
round:
    li r2, 0          ; i
    li r3, 4096
fill:
    add r4, r2, r1    ; value = (i + round) & 0xff
    add r5, r10, r2
    stb r4, 0(r5)
    add r2, r2, 1
    bne r2, r3, fill
    li r2, 0
copy:
    add r5, r10, r2
    ldq r6, 0(r5)
    add r7, r11, r2
    stq r6, 0(r7)
    add r2, r2, 8
    bne r2, r3, copy
    sub r1, r1, 1
    bne r1, r31, round
    halt
