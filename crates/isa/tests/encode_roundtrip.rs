//! Property tests: the binary trace encoding is exact for every well-formed
//! instruction the generators can produce.

use dcg_isa::{decode_word, encode_word, ArchReg, BranchInfo, BranchKind, Inst, MemRef, OpClass};
use dcg_testkit::prop::{self, Gen};

fn arb_reg() -> Gen<Option<ArchReg>> {
    Gen::one_of(vec![
        prop::just(None),
        prop::range(0u8..64).map(ArchReg::from_dense),
    ])
}

fn arb_branch_kind() -> Gen<BranchKind> {
    Gen::one_of(
        [
            BranchKind::Conditional,
            BranchKind::Jump,
            BranchKind::Call,
            BranchKind::Return,
        ]
        .into_iter()
        .map(prop::just)
        .collect(),
    )
}

fn arb_inst() -> Gen<Inst> {
    prop::tuple((
        prop::any_u64(),        // pc
        0usize..OpClass::COUNT, // op
        prop::tuple((arb_reg(), arb_reg(), arb_reg())),
        prop::any_u64(), // addr
        0u32..4,         // size_log2
        arb_branch_kind(),
        prop::any_bool(), // taken
        prop::any_u64(),  // target
    ))
    .map(
        |(pc, op_idx, (dest, src0, src1), addr, size_log2, kind, taken, target)| {
            let op = OpClass::from_index(op_idx).expect("index in range");
            let mem = op.is_mem().then(|| MemRef::new(addr, 1u8 << size_log2));
            let branch = (op == OpClass::Branch).then(|| BranchInfo {
                kind,
                taken: taken || kind.is_unconditional(),
                target,
            });
            Inst {
                pc,
                op,
                dest: if op.writes_result() { dest } else { None },
                srcs: [src0, src1],
                mem,
                branch,
            }
        },
    )
}

#[test]
fn encode_decode_roundtrip() {
    prop::check("encode_decode_roundtrip", arb_inst(), |inst| {
        assert!(inst.is_well_formed());
        let words = encode_word(&inst);
        assert_eq!(decode_word(&words), Ok(inst));
    });
}

#[test]
fn decode_never_panics() {
    // Arbitrary bit patterns must decode to either a well-formed
    // instruction or a clean error, never panic.
    prop::check("decode_never_panics", prop::any_u64_array::<3>(), |words| {
        if let Ok(inst) = decode_word(&words) {
            assert!(inst.is_well_formed());
        }
    });
}
