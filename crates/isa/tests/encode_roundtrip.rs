//! Property tests: the binary trace encoding is exact for every well-formed
//! instruction the generators can produce.

use dcg_isa::{decode_word, encode_word, ArchReg, BranchInfo, BranchKind, Inst, MemRef, OpClass};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Option<ArchReg>> {
    prop_oneof![Just(None), (0u8..64).prop_map(ArchReg::from_dense),]
}

fn arb_branch_kind() -> impl Strategy<Value = BranchKind> {
    prop_oneof![
        Just(BranchKind::Conditional),
        Just(BranchKind::Jump),
        Just(BranchKind::Call),
        Just(BranchKind::Return),
    ]
}

prop_compose! {
    fn arb_inst()(
        pc in any::<u64>(),
        op_idx in 0usize..OpClass::COUNT,
        dest in arb_reg(),
        src0 in arb_reg(),
        src1 in arb_reg(),
        addr in any::<u64>(),
        size_log2 in 0u32..4,
        kind in arb_branch_kind(),
        taken in any::<bool>(),
        target in any::<u64>(),
    ) -> Inst {
        let op = OpClass::from_index(op_idx).expect("index in range");
        let mem = op.is_mem().then(|| MemRef::new(addr, 1u8 << size_log2));
        let branch = (op == OpClass::Branch).then(|| BranchInfo {
            kind,
            taken: taken || kind.is_unconditional(),
            target,
        });
        Inst {
            pc,
            op,
            dest: if op.writes_result() { dest } else { None },
            srcs: [src0, src1],
            mem,
            branch,
        }
    }
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(inst in arb_inst()) {
        prop_assert!(inst.is_well_formed());
        let words = encode_word(&inst);
        prop_assert_eq!(decode_word(&words), Ok(inst));
    }

    #[test]
    fn decode_never_panics(words in any::<[u64; 3]>()) {
        // Arbitrary bit patterns must decode to either a well-formed
        // instruction or a clean error, never panic.
        if let Ok(inst) = decode_word(&words) { prop_assert!(inst.is_well_formed()) }
    }
}
