//! Compact binary encoding of [`Inst`] for trace storage and replay.
//!
//! An instruction packs into three 64-bit words:
//!
//! * word 0 — the program counter;
//! * word 1 — packed operation class, operands and flags (layout below);
//! * word 2 — the memory effective address, the branch target, or zero.
//!
//! Word 1 layout (LSB first):
//!
//! | bits  | field                                         |
//! |-------|-----------------------------------------------|
//! | 0..4  | operation class index                         |
//! | 4     | destination present                           |
//! | 5..12 | destination dense register index              |
//! | 12    | source 0 present                              |
//! | 13..20| source 0 dense register index                 |
//! | 20    | source 1 present                              |
//! | 21..28| source 1 dense register index                 |
//! | 28..30| log2 of memory access size                    |
//! | 30..32| branch kind                                   |
//! | 32    | branch taken                                  |
//!
//! The encoding is exact: `decode_word(&encode_word(&i)) == Ok(i)` for every
//! well-formed instruction (verified by a property test).

use std::error::Error;
use std::fmt;

use crate::{ArchReg, BranchInfo, BranchKind, Inst, MemRef, OpClass};

/// Error returned by [`decode_word`] for a corrupt encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeWordError {
    /// The operation-class field holds an out-of-range index.
    BadOpClass(u8),
    /// A register field holds an out-of-range dense index.
    BadRegister(u8),
    /// The decoded instruction violates [`Inst::is_well_formed`].
    Malformed,
}

impl fmt::Display for DecodeWordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeWordError::BadOpClass(v) => write!(f, "invalid operation class index {v}"),
            DecodeWordError::BadRegister(v) => write!(f, "invalid register index {v}"),
            DecodeWordError::Malformed => f.write_str("decoded instruction is malformed"),
        }
    }
}

impl Error for DecodeWordError {}

fn pack_reg(reg: Option<ArchReg>) -> u64 {
    match reg {
        Some(r) => 1 | ((r.dense() as u64) << 1),
        None => 0,
    }
}

fn unpack_reg(bits: u64) -> Result<Option<ArchReg>, DecodeWordError> {
    if bits & 1 == 0 {
        return Ok(None);
    }
    let idx = ((bits >> 1) & 0x7f) as u8;
    ArchReg::from_dense(idx)
        .map(Some)
        .ok_or(DecodeWordError::BadRegister(idx))
}

fn branch_kind_code(kind: BranchKind) -> u64 {
    match kind {
        BranchKind::Conditional => 0,
        BranchKind::Jump => 1,
        BranchKind::Call => 2,
        BranchKind::Return => 3,
    }
}

fn branch_kind_from_code(code: u64) -> BranchKind {
    match code & 3 {
        0 => BranchKind::Conditional,
        1 => BranchKind::Jump,
        2 => BranchKind::Call,
        _ => BranchKind::Return,
    }
}

/// Encode a well-formed instruction into three 64-bit words.
///
/// # Panics
///
/// Panics if `inst` is not [well-formed](Inst::is_well_formed).
///
/// # Example
///
/// ```
/// use dcg_isa::{decode_word, encode_word, ArchReg, Inst, OpClass};
///
/// let inst = Inst::alu(0x400, OpClass::IntMul).with_dest(ArchReg::int(7));
/// let words = encode_word(&inst);
/// assert_eq!(decode_word(&words), Ok(inst));
/// ```
pub fn encode_word(inst: &Inst) -> [u64; 3] {
    assert!(
        inst.is_well_formed(),
        "refusing to encode malformed {inst:?}"
    );
    let mut w1 = inst.op.index() as u64;
    w1 |= pack_reg(inst.dest) << 4;
    w1 |= pack_reg(inst.srcs[0]) << 12;
    w1 |= pack_reg(inst.srcs[1]) << 20;

    let mut w2 = 0u64;
    if let Some(mem) = inst.mem {
        let log2 = mem.size.trailing_zeros() as u64;
        w1 |= (log2 & 3) << 28;
        w2 = mem.addr;
    }
    if let Some(br) = inst.branch {
        w1 |= branch_kind_code(br.kind) << 30;
        w1 |= u64::from(br.taken) << 32;
        w2 = br.target;
    }
    [inst.pc, w1, w2]
}

/// Decode three words produced by [`encode_word`].
///
/// # Errors
///
/// Returns a [`DecodeWordError`] if any field is out of range or the decoded
/// instruction would be malformed.
pub fn decode_word(words: &[u64; 3]) -> Result<Inst, DecodeWordError> {
    let [pc, w1, w2] = *words;
    let op_idx = (w1 & 0xf) as u8;
    let op = OpClass::from_index(usize::from(op_idx)).ok_or(DecodeWordError::BadOpClass(op_idx))?;

    let dest = unpack_reg(w1 >> 4)?;
    let src0 = unpack_reg(w1 >> 12)?;
    let src1 = unpack_reg(w1 >> 20)?;

    let mem = op.is_mem().then(|| {
        let log2 = (w1 >> 28) & 3;
        MemRef::new(w2, 1u8 << log2)
    });
    let branch = (op == OpClass::Branch).then(|| BranchInfo {
        kind: branch_kind_from_code(w1 >> 30),
        taken: (w1 >> 32) & 1 == 1,
        target: w2,
    });

    let inst = Inst {
        pc,
        op,
        dest,
        srcs: [src0, src1],
        mem,
        branch,
    };
    if inst.is_well_formed() {
        Ok(inst)
    } else {
        Err(DecodeWordError::Malformed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple_alu() {
        let i = Inst::alu(0xdead_beef_0000, OpClass::IntAlu)
            .with_dest(ArchReg::int(3))
            .with_srcs([Some(ArchReg::int(1)), Some(ArchReg::int(2))]);
        assert_eq!(decode_word(&encode_word(&i)), Ok(i));
    }

    #[test]
    fn roundtrip_load_store() {
        for size in [1u8, 2, 4, 8] {
            let ld = Inst::load(0x10, MemRef::new(0xffff_ffff_ffff_fff0, size))
                .with_dest(ArchReg::fp(9))
                .with_srcs([Some(ArchReg::int(30)), None]);
            assert_eq!(decode_word(&encode_word(&ld)), Ok(ld));

            let st = Inst::store(0x10, MemRef::new(0x40, size))
                .with_srcs([Some(ArchReg::int(30)), Some(ArchReg::int(2))]);
            assert_eq!(decode_word(&encode_word(&st)), Ok(st));
        }
    }

    #[test]
    fn roundtrip_branches() {
        for kind in BranchKind::ALL {
            for taken in [true, false] {
                if kind.is_unconditional() && !taken {
                    continue;
                }
                let b = Inst::branch(
                    0x7000,
                    BranchInfo {
                        kind,
                        taken,
                        target: 0x1234_5678,
                    },
                )
                .with_srcs([Some(ArchReg::int(5)), None]);
                assert_eq!(decode_word(&encode_word(&b)), Ok(b));
            }
        }
    }

    #[test]
    fn decode_rejects_bad_op_class() {
        let words = [0u64, 0xf, 0];
        assert_eq!(decode_word(&words), Err(DecodeWordError::BadOpClass(0xf)));
    }

    #[test]
    fn decode_rejects_bad_register() {
        // op class 0 (IntAlu), dest present with dense index 127.
        let w1 = (1 | (127 << 1)) << 4;
        assert_eq!(
            decode_word(&[0, w1, 0]),
            Err(DecodeWordError::BadRegister(127))
        );
    }

    #[test]
    #[should_panic(expected = "malformed")]
    fn encode_rejects_malformed() {
        let mut bad = Inst::load(0, MemRef::new(0, 8));
        bad.mem = None;
        let _ = encode_word(&bad);
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            DecodeWordError::BadOpClass(9),
            DecodeWordError::BadRegister(99),
            DecodeWordError::Malformed,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
