//! Dynamic instruction representation.

use std::fmt;

use crate::{ArchReg, OpClass};

/// Kind of control transfer for [`BranchInfo`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// Conditional branch; direction given by [`BranchInfo::taken`].
    Conditional,
    /// Unconditional direct jump (always taken).
    Jump,
    /// Subroutine call (pushes a return-address-stack entry).
    Call,
    /// Subroutine return (pops the return-address stack).
    Return,
}

impl BranchKind {
    /// All branch kinds in a fixed order.
    pub const ALL: [BranchKind; 4] = [
        BranchKind::Conditional,
        BranchKind::Jump,
        BranchKind::Call,
        BranchKind::Return,
    ];

    /// `true` if the direction of this kind is always "taken".
    #[inline]
    pub fn is_unconditional(self) -> bool {
        !matches!(self, BranchKind::Conditional)
    }
}

/// Resolved control behaviour of a branch instruction.
///
/// Because the workload generators are trace-like, the *actual* outcome is
/// carried with the instruction; the simulator's branch predictor makes its
/// own prediction and is penalised when it disagrees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchInfo {
    /// Kind of control transfer.
    pub kind: BranchKind,
    /// Actual direction (always `true` for unconditional kinds).
    pub taken: bool,
    /// Actual target address when taken.
    pub target: u64,
}

impl BranchInfo {
    /// A conditional branch with the given actual direction and target.
    #[inline]
    pub fn conditional(taken: bool, target: u64) -> BranchInfo {
        BranchInfo {
            kind: BranchKind::Conditional,
            taken,
            target,
        }
    }
}

/// Resolved memory behaviour of a load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Effective virtual address.
    pub addr: u64,
    /// Access size in bytes (1, 2, 4 or 8).
    pub size: u8,
}

impl MemRef {
    /// A naturally-aligned access of `size` bytes at `addr`.
    #[inline]
    pub fn new(addr: u64, size: u8) -> MemRef {
        MemRef { addr, size }
    }
}

/// A dynamic (already-executed, trace-like) instruction.
///
/// Construction uses a small builder-style API: start from one of the class
/// constructors ([`Inst::alu`], [`Inst::load`], [`Inst::store`],
/// [`Inst::branch`]) and chain `with_*` methods.
///
/// # Example
///
/// ```
/// use dcg_isa::{ArchReg, Inst, MemRef, OpClass};
///
/// let ld = Inst::load(0x2000, MemRef::new(0x8000_0010, 8))
///     .with_dest(ArchReg::int(4))
///     .with_srcs([Some(ArchReg::int(29)), None]);
/// assert_eq!(ld.op, OpClass::Load);
/// assert_eq!(ld.mem.unwrap().addr, 0x8000_0010);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Inst {
    /// Program counter of this instruction.
    pub pc: u64,
    /// Operation class.
    pub op: OpClass,
    /// Destination register, if any.
    pub dest: Option<ArchReg>,
    /// Up to two source registers.
    pub srcs: [Option<ArchReg>; 2],
    /// Memory behaviour (loads and stores only).
    pub mem: Option<MemRef>,
    /// Control behaviour (branches only).
    pub branch: Option<BranchInfo>,
}

impl Inst {
    /// A non-memory, non-branch instruction of class `op`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is a memory or branch class; use [`Inst::load`],
    /// [`Inst::store`] or [`Inst::branch`] for those.
    #[inline]
    pub fn alu(pc: u64, op: OpClass) -> Inst {
        assert!(
            !op.is_mem() && op != OpClass::Branch,
            "use the load/store/branch constructors for {op}"
        );
        Inst {
            pc,
            op,
            dest: None,
            srcs: [None, None],
            mem: None,
            branch: None,
        }
    }

    /// A load instruction accessing `mem`.
    #[inline]
    pub fn load(pc: u64, mem: MemRef) -> Inst {
        Inst {
            pc,
            op: OpClass::Load,
            dest: None,
            srcs: [None, None],
            mem: Some(mem),
            branch: None,
        }
    }

    /// A store instruction accessing `mem`.
    #[inline]
    pub fn store(pc: u64, mem: MemRef) -> Inst {
        Inst {
            pc,
            op: OpClass::Store,
            dest: None,
            srcs: [None, None],
            mem: Some(mem),
            branch: None,
        }
    }

    /// A branch instruction with resolved behaviour `info`.
    #[inline]
    pub fn branch(pc: u64, info: BranchInfo) -> Inst {
        Inst {
            pc,
            op: OpClass::Branch,
            dest: None,
            srcs: [None, None],
            mem: None,
            branch: Some(info),
        }
    }

    /// Set the destination register.
    #[inline]
    pub fn with_dest(mut self, dest: ArchReg) -> Inst {
        self.dest = Some(dest);
        self
    }

    /// Set the source registers.
    #[inline]
    pub fn with_srcs(mut self, srcs: [Option<ArchReg>; 2]) -> Inst {
        self.srcs = srcs;
        self
    }

    /// Fall-through address (`pc + 4`); every instruction is 4 bytes.
    #[inline]
    pub fn next_pc(&self) -> u64 {
        self.pc.wrapping_add(4)
    }

    /// Address of the instruction that actually executes after this one.
    ///
    /// For taken branches this is the branch target, otherwise `pc + 4`.
    #[inline]
    pub fn successor_pc(&self) -> u64 {
        match self.branch {
            Some(b) if b.taken => b.target,
            _ => self.next_pc(),
        }
    }

    /// `true` if this instruction is a taken branch.
    #[inline]
    pub fn is_taken_branch(&self) -> bool {
        matches!(self.branch, Some(b) if b.taken)
    }

    /// Number of register source operands actually present.
    #[inline]
    pub fn src_count(&self) -> usize {
        self.srcs.iter().filter(|s| s.is_some()).count()
    }

    /// Check internal consistency; used by the encoder and by debug
    /// assertions in the simulator front end.
    ///
    /// Consistency rules:
    /// * memory classes carry `mem`, non-memory classes do not;
    /// * the branch class carries `branch`, others do not;
    /// * unconditional branches are taken;
    /// * classes that write no result carry no destination.
    pub fn is_well_formed(&self) -> bool {
        let mem_ok = self.op.is_mem() == self.mem.is_some();
        let br_ok = (self.op == OpClass::Branch) == self.branch.is_some();
        let uncond_ok = match self.branch {
            Some(b) => !b.kind.is_unconditional() || b.taken,
            None => true,
        };
        let dest_ok = self.op.writes_result() || self.dest.is_none();
        mem_ok && br_ok && uncond_ok && dest_ok
    }
}

impl fmt::Display for Inst {
    /// Assembly-style rendering, e.g.
    /// `0x00001000: int-alu r1, r2 -> r3`,
    /// `0x00001004: load [0x20000000] -> r4`,
    /// `0x00001008: branch r5, taken -> 0x1000`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}: {}", self.pc, self.op)?;
        let mut first = true;
        for src in self.srcs.iter().flatten() {
            write!(f, "{} {src}", if first { "" } else { "," })?;
            first = false;
        }
        if let Some(m) = self.mem {
            write!(f, "{} [{:#x}]", if first { "" } else { "," }, m.addr)?;
        }
        if let Some(b) = self.branch {
            write!(
                f,
                "{} {} -> {:#x}",
                if first { "" } else { "," },
                if b.taken { "taken" } else { "not-taken" },
                b.target
            )?;
        } else if let Some(d) = self.dest {
            write!(f, " -> {d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ArchReg;

    #[test]
    fn alu_constructor_builds_well_formed() {
        let i = Inst::alu(0x10, OpClass::FpMul)
            .with_dest(ArchReg::fp(1))
            .with_srcs([Some(ArchReg::fp(2)), Some(ArchReg::fp(3))]);
        assert!(i.is_well_formed());
        assert_eq!(i.src_count(), 2);
        assert_eq!(i.successor_pc(), 0x14);
    }

    #[test]
    #[should_panic(expected = "constructors")]
    fn alu_constructor_rejects_load() {
        let _ = Inst::alu(0, OpClass::Load);
    }

    #[test]
    fn taken_branch_successor_is_target() {
        let b = Inst::branch(0x100, BranchInfo::conditional(true, 0x40));
        assert!(b.is_taken_branch());
        assert_eq!(b.successor_pc(), 0x40);

        let nt = Inst::branch(0x100, BranchInfo::conditional(false, 0x40));
        assert!(!nt.is_taken_branch());
        assert_eq!(nt.successor_pc(), 0x104);
    }

    #[test]
    fn not_taken_unconditional_is_malformed() {
        let bad = Inst::branch(
            0,
            BranchInfo {
                kind: BranchKind::Jump,
                taken: false,
                target: 8,
            },
        );
        assert!(!bad.is_well_formed());
    }

    #[test]
    fn store_with_dest_is_malformed() {
        let bad = Inst::store(0, MemRef::new(64, 8)).with_dest(ArchReg::int(1));
        assert!(!bad.is_well_formed());
    }

    #[test]
    fn mem_presence_matches_class() {
        let ld = Inst::load(0, MemRef::new(0, 4));
        assert!(ld.is_well_formed());
        let mut not_ld = ld;
        not_ld.mem = None;
        assert!(!not_ld.is_well_formed());
    }

    #[test]
    fn pc_wraps_safely() {
        let i = Inst::alu(u64::MAX - 1, OpClass::IntAlu);
        assert_eq!(i.next_pc(), 2);
    }

    #[test]
    fn display_renders_assembly_style() {
        let add = Inst::alu(0x1000, OpClass::IntAlu)
            .with_dest(ArchReg::int(3))
            .with_srcs([Some(ArchReg::int(1)), Some(ArchReg::int(2))]);
        assert_eq!(add.to_string(), "0x00001000: int-alu r1, r2 -> r3");

        let ld = Inst::load(0x1004, MemRef::new(0x2000_0000, 8))
            .with_dest(ArchReg::int(4))
            .with_srcs([Some(ArchReg::int(29)), None]);
        assert_eq!(ld.to_string(), "0x00001004: load r29, [0x20000000] -> r4");

        let br = Inst::branch(0x1008, BranchInfo::conditional(true, 0x1000))
            .with_srcs([Some(ArchReg::int(5)), None]);
        assert_eq!(br.to_string(), "0x00001008: branch r5, taken -> 0x1000");

        let st = Inst::store(0x100c, MemRef::new(0x40, 8));
        assert_eq!(st.to_string(), "0x0000100c: store [0x40]");
    }
}
