//! Architectural registers.
//!
//! The Alpha architecture (which the paper's binaries target) has 32 integer
//! and 32 floating-point registers. Register 31 of each file reads as zero
//! and writes to it are discarded; the workload generators use that
//! convention to emit result-less operations where needed.

use std::fmt;

/// Number of integer architectural registers.
pub const NUM_INT_REGS: u8 = 32;
/// Number of floating-point architectural registers.
pub const NUM_FP_REGS: u8 = 32;
/// Total number of architectural registers (integer + floating point).
pub const NUM_ARCH_REGS: u8 = NUM_INT_REGS + NUM_FP_REGS;

/// Which register file an [`ArchReg`] belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegFileKind {
    /// Integer register file (`r0..r31`).
    Int,
    /// Floating-point register file (`f0..f31`).
    Fp,
}

impl fmt::Display for RegFileKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegFileKind::Int => f.write_str("int"),
            RegFileKind::Fp => f.write_str("fp"),
        }
    }
}

/// An architectural register, encoded as a dense index `0..NUM_ARCH_REGS`.
///
/// Indices `0..32` are the integer file, `32..64` the FP file. The dense
/// encoding lets the rename stage keep a single flat map table.
///
/// # Example
///
/// ```
/// use dcg_isa::{ArchReg, RegFileKind};
///
/// let r5 = ArchReg::int(5);
/// let f5 = ArchReg::fp(5);
/// assert_ne!(r5, f5);
/// assert_eq!(r5.file(), RegFileKind::Int);
/// assert_eq!(f5.file(), RegFileKind::Fp);
/// assert_eq!(f5.number(), 5);
/// assert_eq!(r5.to_string(), "r5");
/// assert_eq!(f5.to_string(), "f5");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArchReg(u8);

impl ArchReg {
    /// The integer zero register (`r31`): reads as zero, writes discarded.
    pub const INT_ZERO: ArchReg = ArchReg(NUM_INT_REGS - 1);
    /// The FP zero register (`f31`): reads as zero, writes discarded.
    pub const FP_ZERO: ArchReg = ArchReg(NUM_ARCH_REGS - 1);

    /// Integer register `r<n>`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    #[inline]
    pub fn int(n: u8) -> ArchReg {
        assert!(n < NUM_INT_REGS, "integer register index {n} out of range");
        ArchReg(n)
    }

    /// Floating-point register `f<n>`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    #[inline]
    pub fn fp(n: u8) -> ArchReg {
        assert!(n < NUM_FP_REGS, "fp register index {n} out of range");
        ArchReg(NUM_INT_REGS + n)
    }

    /// Construct from a dense index (`0..NUM_ARCH_REGS`).
    ///
    /// Returns `None` if `index` is out of range.
    #[inline]
    pub fn from_dense(index: u8) -> Option<ArchReg> {
        (index < NUM_ARCH_REGS).then_some(ArchReg(index))
    }

    /// Dense index in `0..NUM_ARCH_REGS`, suitable for flat map tables.
    #[inline]
    pub fn dense(self) -> usize {
        usize::from(self.0)
    }

    /// The register file this register belongs to.
    #[inline]
    pub fn file(self) -> RegFileKind {
        if self.0 < NUM_INT_REGS {
            RegFileKind::Int
        } else {
            RegFileKind::Fp
        }
    }

    /// Register number within its file (`0..32`).
    #[inline]
    pub fn number(self) -> u8 {
        if self.0 < NUM_INT_REGS {
            self.0
        } else {
            self.0 - NUM_INT_REGS
        }
    }

    /// `true` if this is a hard-wired zero register (writes are discarded and
    /// never allocate a rename mapping).
    #[inline]
    pub fn is_zero(self) -> bool {
        self == Self::INT_ZERO || self == Self::FP_ZERO
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.file() {
            RegFileKind::Int => write!(f, "r{}", self.number()),
            RegFileKind::Fp => write!(f, "f{}", self.number()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_roundtrip() {
        for i in 0..NUM_ARCH_REGS {
            let r = ArchReg::from_dense(i).expect("in range");
            assert_eq!(r.dense(), usize::from(i));
        }
        assert_eq!(ArchReg::from_dense(NUM_ARCH_REGS), None);
    }

    #[test]
    fn int_and_fp_files_are_disjoint() {
        for n in 0..32 {
            assert_eq!(ArchReg::int(n).file(), RegFileKind::Int);
            assert_eq!(ArchReg::fp(n).file(), RegFileKind::Fp);
            assert_ne!(ArchReg::int(n), ArchReg::fp(n));
            assert_eq!(ArchReg::int(n).number(), n);
            assert_eq!(ArchReg::fp(n).number(), n);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn int_constructor_rejects_out_of_range() {
        let _ = ArchReg::int(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fp_constructor_rejects_out_of_range() {
        let _ = ArchReg::fp(32);
    }

    #[test]
    fn zero_registers() {
        assert!(ArchReg::INT_ZERO.is_zero());
        assert!(ArchReg::FP_ZERO.is_zero());
        assert!(!ArchReg::int(0).is_zero());
        assert_eq!(ArchReg::INT_ZERO.number(), 31);
        assert_eq!(ArchReg::FP_ZERO.number(), 31);
    }

    #[test]
    fn display_format() {
        assert_eq!(ArchReg::int(0).to_string(), "r0");
        assert_eq!(ArchReg::fp(17).to_string(), "f17");
    }
}
