//! Operation classes and execution-unit classes.
//!
//! The simulator schedules at the granularity of *operation classes* (the
//! same granularity SimpleScalar's `sim-outorder` uses): each class maps to
//! one execution-unit class with a fixed latency and issue interval, both of
//! which live in the simulator configuration so they can be varied per
//! experiment.

use std::fmt;

/// Operation class of a dynamic instruction.
///
/// This is the granularity at which the out-of-order core schedules work and
/// at which the paper's clock-gating decisions are taken: an issued
/// instruction's class determines which execution unit it occupies in the
/// execute stage, whether it touches a D-cache port in the memory stage and
/// whether it drives a result bus at writeback.
///
/// # Example
///
/// ```
/// use dcg_isa::{FuClass, OpClass};
///
/// assert_eq!(OpClass::Load.fu_class(), FuClass::MemPort);
/// assert!(OpClass::FpMul.is_fp());
/// assert!(!OpClass::Branch.writes_result());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    /// Simple integer ALU operation (add, sub, logic, shift, compare).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide.
    IntDiv,
    /// Floating-point add/sub/compare/convert.
    FpAlu,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide / square root.
    FpDiv,
    /// Memory load (integer or FP destination).
    Load,
    /// Memory store.
    Store,
    /// Control transfer (conditional branch, jump, call, return).
    Branch,
}

impl OpClass {
    /// All operation classes, in a fixed order usable for table indexing.
    pub const ALL: [OpClass; 9] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::IntDiv,
        OpClass::FpAlu,
        OpClass::FpMul,
        OpClass::FpDiv,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
    ];

    /// Number of distinct operation classes.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable dense index of this class (`0..COUNT`), for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            OpClass::IntAlu => 0,
            OpClass::IntMul => 1,
            OpClass::IntDiv => 2,
            OpClass::FpAlu => 3,
            OpClass::FpMul => 4,
            OpClass::FpDiv => 5,
            OpClass::Load => 6,
            OpClass::Store => 7,
            OpClass::Branch => 8,
        }
    }

    /// Reverse of [`OpClass::index`].
    ///
    /// Returns `None` if `index >= OpClass::COUNT`.
    #[inline]
    pub fn from_index(index: usize) -> Option<OpClass> {
        Self::ALL.get(index).copied()
    }

    /// The execution-unit class instructions of this class occupy.
    ///
    /// Branches execute on the integer ALUs (as on the Alpha 21264);
    /// loads and stores occupy a memory port (address generation uses the
    /// port's dedicated AGU).
    #[inline]
    pub fn fu_class(self) -> FuClass {
        match self {
            OpClass::IntAlu | OpClass::Branch => FuClass::IntAlu,
            OpClass::IntMul | OpClass::IntDiv => FuClass::IntMulDiv,
            OpClass::FpAlu => FuClass::FpAlu,
            OpClass::FpMul | OpClass::FpDiv => FuClass::FpMulDiv,
            OpClass::Load | OpClass::Store => FuClass::MemPort,
        }
    }

    /// `true` for floating-point operation classes.
    #[inline]
    pub fn is_fp(self) -> bool {
        matches!(self, OpClass::FpAlu | OpClass::FpMul | OpClass::FpDiv)
    }

    /// `true` for memory operation classes.
    #[inline]
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// `true` if instructions of this class produce a register result and
    /// therefore drive a result bus at writeback.
    ///
    /// Stores and branches produce no register value (the paper exploits
    /// exactly this for its store-delay argument in §3.3).
    #[inline]
    pub fn writes_result(self) -> bool {
        !matches!(self, OpClass::Store | OpClass::Branch)
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::IntAlu => "int-alu",
            OpClass::IntMul => "int-mul",
            OpClass::IntDiv => "int-div",
            OpClass::FpAlu => "fp-alu",
            OpClass::FpMul => "fp-mul",
            OpClass::FpDiv => "fp-div",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Branch => "branch",
        };
        f.write_str(s)
    }
}

/// Execution-unit class (Table 1 of the paper).
///
/// The baseline configuration provides 6 integer ALUs, 2 integer
/// multiply/divide units, 4 FP ALUs, 4 FP multiply/divide units and 2 cache
/// ports. DCG clock-gates individual *instances* of these classes based on
/// the issue stage's GRANT signals (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FuClass {
    /// Integer ALU (also executes branches).
    IntAlu,
    /// Integer multiply/divide unit.
    IntMulDiv,
    /// Floating-point ALU.
    FpAlu,
    /// Floating-point multiply/divide unit.
    FpMulDiv,
    /// Cache port (address generation + D-cache access).
    MemPort,
}

impl FuClass {
    /// All execution-unit classes, in a fixed order usable for indexing.
    pub const ALL: [FuClass; 5] = [
        FuClass::IntAlu,
        FuClass::IntMulDiv,
        FuClass::FpAlu,
        FuClass::FpMulDiv,
        FuClass::MemPort,
    ];

    /// Number of distinct execution-unit classes.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable dense index of this class (`0..COUNT`).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            FuClass::IntAlu => 0,
            FuClass::IntMulDiv => 1,
            FuClass::FpAlu => 2,
            FuClass::FpMulDiv => 3,
            FuClass::MemPort => 4,
        }
    }

    /// Reverse of [`FuClass::index`].
    ///
    /// Returns `None` if `index >= FuClass::COUNT`.
    #[inline]
    pub fn from_index(index: usize) -> Option<FuClass> {
        Self::ALL.get(index).copied()
    }

    /// `true` for the floating-point unit classes.
    #[inline]
    pub fn is_fp(self) -> bool {
        matches!(self, FuClass::FpAlu | FuClass::FpMulDiv)
    }
}

impl fmt::Display for FuClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FuClass::IntAlu => "int-alu",
            FuClass::IntMulDiv => "int-muldiv",
            FuClass::FpAlu => "fp-alu",
            FuClass::FpMulDiv => "fp-muldiv",
            FuClass::MemPort => "mem-port",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_class_index_roundtrip() {
        for (i, op) in OpClass::ALL.iter().enumerate() {
            assert_eq!(op.index(), i);
            assert_eq!(OpClass::from_index(i), Some(*op));
        }
        assert_eq!(OpClass::from_index(OpClass::COUNT), None);
    }

    #[test]
    fn fu_class_index_roundtrip() {
        for (i, fu) in FuClass::ALL.iter().enumerate() {
            assert_eq!(fu.index(), i);
            assert_eq!(FuClass::from_index(i), Some(*fu));
        }
        assert_eq!(FuClass::from_index(FuClass::COUNT), None);
    }

    #[test]
    fn branches_execute_on_int_alu() {
        assert_eq!(OpClass::Branch.fu_class(), FuClass::IntAlu);
    }

    #[test]
    fn memory_ops_use_mem_port() {
        assert_eq!(OpClass::Load.fu_class(), FuClass::MemPort);
        assert_eq!(OpClass::Store.fu_class(), FuClass::MemPort);
        assert!(OpClass::Load.is_mem());
        assert!(OpClass::Store.is_mem());
        assert!(!OpClass::IntAlu.is_mem());
    }

    #[test]
    fn fp_classification_is_consistent() {
        for op in OpClass::ALL {
            if op.is_fp() {
                assert!(op.fu_class().is_fp(), "{op} should map to an FP unit");
            } else {
                assert!(!op.fu_class().is_fp(), "{op} should map to a non-FP unit");
            }
        }
    }

    #[test]
    fn stores_and_branches_write_no_result() {
        assert!(!OpClass::Store.writes_result());
        assert!(!OpClass::Branch.writes_result());
        assert!(OpClass::Load.writes_result());
        assert!(OpClass::IntAlu.writes_result());
        assert!(OpClass::FpDiv.writes_result());
    }

    #[test]
    fn display_is_nonempty_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for op in OpClass::ALL {
            let s = op.to_string();
            assert!(!s.is_empty());
            assert!(seen.insert(s));
        }
    }
}
