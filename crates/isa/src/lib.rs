//! # dcg-isa — instruction-set model for the DCG reproduction
//!
//! An Alpha-like 64-bit RISC instruction-set abstraction used by the
//! out-of-order simulator (`dcg-sim`), the synthetic workload generators
//! (`dcg-workloads`) and the clock-gating policies (`dcg-core`).
//!
//! The paper ("Deterministic Clock Gating for Microprocessor Power
//! Reduction", HPCA 2003) evaluates pre-compiled Alpha SPEC2000 binaries.
//! This reproduction substitutes synthetic instruction streams, so the ISA
//! layer only needs to capture what the *microarchitecture* observes about
//! an instruction:
//!
//! * which **operation class** it is (and therefore which execution-unit
//!   class it occupies, and for how long),
//! * its **register operands** (for renaming and wakeup),
//! * its **memory behaviour** (effective address, load vs. store),
//! * its **control behaviour** (branch target and actual direction).
//!
//! A compact 64-bit binary encoding ([`encode_word`]/[`decode_word`]) is
//! provided so traces can be stored and replayed exactly.
//!
//! # Example
//!
//! ```
//! use dcg_isa::{Inst, OpClass, ArchReg};
//!
//! let add = Inst::alu(0x1000, OpClass::IntAlu)
//!     .with_dest(ArchReg::int(3))
//!     .with_srcs([Some(ArchReg::int(1)), Some(ArchReg::int(2))]);
//! assert_eq!(add.op, OpClass::IntAlu);
//! assert!(add.mem.is_none());
//! assert!(add.branch.is_none());
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod encode;
mod inst;
mod op;
mod reg;

pub use encode::{decode_word, encode_word, DecodeWordError};
pub use inst::{BranchInfo, BranchKind, Inst, MemRef};
pub use op::{FuClass, OpClass};
pub use reg::{ArchReg, RegFileKind, NUM_ARCH_REGS, NUM_FP_REGS, NUM_INT_REGS};
