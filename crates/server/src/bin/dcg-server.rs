//! `dcg-server` — run the crash-resumable experiment daemon.
//!
//! ```text
//! dcg-server [--state DIR] [--socket PATH] [--workers N] [--queue N]
//!            [--retries N] [--drain]
//! ```
//!
//! `--state` (default `results/server`) holds the job WAL, committed
//! result documents (`jobs/job-<id>.json`) and the replay trace store.
//! `--socket` defaults to `<state>/dcg.sock`. `--drain` runs the
//! journaled backlog to completion and exits without opening a socket —
//! the restart half of the crash-resume flow.
//!
//! Environment knobs (flags take precedence): `DCG_SERVER_QUEUE` bounds
//! the job queue, `DCG_SERVER_RETRIES` bounds execution attempts.
//! `DCG_SERVER_CRASH=<point>:<n>` is the deterministic abort hook used
//! by crash-recovery CI (points: `before-journal`, `before-commit`,
//! `after-commit`).

use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::process::ExitCode;

use dcg_server::{ExperimentServer, ServerConfig, SERVER_QUEUE_ENV, SERVER_RETRIES_ENV};

const USAGE: &str =
    "usage: dcg-server [--state DIR] [--socket PATH] [--workers N] [--queue N] [--retries N] [--drain]";

fn env_usize(var: &str) -> Option<usize> {
    match std::env::var(var) {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => Some(n),
            _ => {
                eprintln!("warning: {var}={v:?} is not a positive integer; ignoring");
                None
            }
        },
        Err(_) => None,
    }
}

fn main() -> ExitCode {
    let mut state = PathBuf::from("results/server");
    let mut socket: Option<PathBuf> = None;
    let mut drain = false;
    let mut workers: Option<usize> = None;
    let mut queue = env_usize(SERVER_QUEUE_ENV);
    let mut retries = env_usize(SERVER_RETRIES_ENV);

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--state" => match args.next() {
                Some(d) => state = PathBuf::from(d),
                None => return usage_err("--state requires a directory"),
            },
            "--socket" => match args.next() {
                Some(p) => socket = Some(PathBuf::from(p)),
                None => return usage_err("--socket requires a path"),
            },
            "--workers" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => workers = Some(n),
                _ => return usage_err("--workers requires a positive integer"),
            },
            "--queue" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => queue = Some(n),
                _ => return usage_err("--queue requires a positive integer"),
            },
            "--retries" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => retries = Some(n),
                _ => return usage_err("--retries requires a positive integer"),
            },
            "--drain" => drain = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_err(&format!("unknown argument {other}")),
        }
    }

    let mut cfg = ServerConfig::new(state.clone());
    if let Some(n) = workers {
        cfg.workers = n;
    }
    if let Some(n) = queue {
        cfg.queue_capacity = n;
    }
    if let Some(n) = retries {
        cfg.max_attempts = n as u32;
    }

    let server = match ExperimentServer::open(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!(
                "dcg-server: could not open state at {}: {e}",
                state.display()
            );
            return ExitCode::FAILURE;
        }
    };

    if drain {
        eprintln!(
            "dcg-server: draining journaled backlog at {}",
            state.display()
        );
        server.drain();
        eprintln!("dcg-server: backlog drained");
        return ExitCode::SUCCESS;
    }

    let socket = socket.unwrap_or_else(|| state.join("dcg.sock"));
    // A previous unclean exit leaves a stale socket file; it is safe to
    // remove because only one daemon owns a state directory.
    let _ = std::fs::remove_file(&socket);
    let listener = match UnixListener::bind(&socket) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("dcg-server: could not bind {}: {e}", socket.display());
            return ExitCode::FAILURE;
        }
    };
    eprintln!("dcg-server: listening on {}", socket.display());
    server.serve(listener);
    let _ = std::fs::remove_file(&socket);
    eprintln!("dcg-server: shut down cleanly");
    ExitCode::SUCCESS
}

fn usage_err(msg: &str) -> ExitCode {
    eprintln!("{msg}\n{USAGE}");
    ExitCode::from(2)
}
