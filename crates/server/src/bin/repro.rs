//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--quick] [--seeds N] [--chart] [--svg] [--json] [--out DIR] <experiment>...
//!
//! experiments:
//!   fig10 fig11 fig12 fig13 fig14 fig15 fig16 fig17
//!   alu-sweep utilization workload-stats phase-analysis summary all
//!   metrics  (cycle-level metrics JSON + utilization-over-time SVGs)
//!   faults   (seeded fault-injection campaign; replay with DCG_FAULT_SEED)
//!   kernels  (real-program kernel suite: differential check + savings JSON)
//!   config   (print the Table-1 machine configuration)
//!
//! server mode (see DESIGN.md §16):
//!   repro serve  [--state DIR] [--socket PATH] [--drain]
//!   repro submit [--socket PATH] [--quick] [--no-wait] <job>...
//!     jobs: simulate:<bench>[:seed]  replay:<bench>[:seed]
//!           metrics[:seed]           faults[:count[:seed]]
//! ```
//!
//! `--quick` runs a reduced benchmark set with short windows (smoke test);
//! the default runs the full 18-benchmark suite at standard length.
//! Tables are printed and written as CSV under `--out` (default
//! `results/`).

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use dcg_server::{DcgClient, ExperimentServer, JobSpec, ServerConfig};

use dcg_experiments::{
    alu_sweep, fault_campaign_json, fault_seed_from_env, fig10, fig11, fig12, fig13, fig14, fig15,
    fig16, fig17, phase_analysis, suite_metrics_json, summary, utilization, workload_stats,
    write_svg, write_utilization_svg, ExperimentConfig, FaultCampaign, FigureTable, Suite,
    FAULT_SEED_ENV,
};

const USAGE: &str = "usage: repro [--quick] [--seeds N] [--chart] [--svg] [--json] [--out DIR] <fig10|...|fig17|alu-sweep|utilization|metrics|faults|kernels|workload-stats|phase-analysis|summary|config|all>...\n       repro serve [--state DIR] [--socket PATH] [--drain]\n       repro submit [--socket PATH] [--quick] [--no-wait] <job>...";

/// Faults injected by `repro faults` (one full round over every
/// injection point per 9, so 32 covers each point at least three times).
const CAMPAIGN_FAULTS: u32 = 32;

fn main() -> ExitCode {
    // Server-mode subcommands take over the whole argument list.
    {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match args.first().map(String::as_str) {
            Some("serve") => return cmd_serve(&args[1..]),
            Some("submit") => return cmd_submit(&args[1..]),
            _ => {}
        }
    }
    let mut quick = false;
    let mut chart = false;
    let mut svg = false;
    let mut json = false;
    let mut seeds: u64 = 1;
    let mut out_dir = PathBuf::from("results");
    let mut wanted: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--chart" => chart = true,
            "--svg" => svg = true,
            "--json" => json = true,
            "--seeds" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => seeds = n,
                _ => {
                    eprintln!("--seeds requires a positive integer\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.next() {
                Some(d) => out_dir = PathBuf::from(d),
                None => {
                    eprintln!("--out requires a directory\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}\n{USAGE}");
                return ExitCode::FAILURE;
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }
    if wanted.iter().any(|w| w == "config") {
        print_config();
        wanted.retain(|w| w != "config");
        if wanted.is_empty() {
            return ExitCode::SUCCESS;
        }
    }
    if wanted.iter().any(|w| w == "all") {
        wanted = [
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "fig16",
            "fig17",
            "alu-sweep",
            "utilization",
            "metrics",
            "kernels",
            "workload-stats",
            "phase-analysis",
            "summary",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    let cfg = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::standard()
    };

    // Figures 10-16 and the utilization table share one suite run.
    let needs_suite = wanted.iter().any(|w| {
        matches!(
            w.as_str(),
            "fig10"
                | "fig11"
                | "fig12"
                | "fig13"
                | "fig14"
                | "fig15"
                | "fig16"
                | "utilization"
                | "metrics"
        )
    });
    let needs_plb = wanted.iter().any(|w| {
        matches!(
            w.as_str(),
            "fig10" | "fig11" | "fig12" | "fig13" | "fig14" | "fig15" | "fig16"
        )
    });
    let suites: Vec<Suite> = if needs_suite {
        (0..seeds)
            .map(|k| {
                let mut c = cfg.clone();
                c.seed = cfg.seed + k;
                eprintln!(
                    "running suite (seed {}): {} benchmarks{}...",
                    c.seed,
                    c.benchmarks.len(),
                    if needs_plb { " (with PLB runs)" } else { "" }
                );
                Suite::run(&c, needs_plb)
            })
            .collect()
    } else {
        Vec::new()
    };
    let averaged = |f: &dyn Fn(&Suite) -> FigureTable| -> FigureTable {
        let tables: Vec<FigureTable> = suites.iter().map(f).collect();
        FigureTable::average(&tables)
    };

    let mut failures = 0;
    for w in &wanted {
        if w == "faults" {
            // Not a figure table either: run the seeded fault-injection
            // campaign and write its classification document.
            let seed = fault_seed_from_env();
            eprintln!(
                "running fault campaign: {CAMPAIGN_FAULTS} faults, seed {seed:#x} \
                 (replay with {FAULT_SEED_ENV}={seed})"
            );
            let campaign = FaultCampaign::run(seed, CAMPAIGN_FAULTS);
            let path = out_dir.join("fault-campaign.json");
            if let Some(dir) = path.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            match std::fs::write(&path, format!("{}\n", fault_campaign_json(&campaign))) {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(e) => {
                    eprintln!("failed to write {}: {e}", path.display());
                    failures += 1;
                }
            }
            for o in &campaign.outcomes {
                println!(
                    "fault {:>3}  {:<20} {:<10} {}",
                    o.spec.id,
                    o.spec.point.label(),
                    o.class.label(),
                    o.detail
                );
            }
            if !campaign.all_classified() {
                eprintln!("fault campaign: undetected faults — safety net failed");
                failures += 1;
            }
            continue;
        }
        if w == "kernels" {
            // Not a figure table: assemble the checked-in kernels, prove
            // the pipeline retires exactly the emulator's committed
            // stream, then measure gating savings on real programs.
            let sim = &cfg.sim;
            let cache = dcg_core::TraceCache::from_env();
            eprintln!("running kernel suite: differential check + savings table...");
            let mut diverged = false;
            for k in dcg_workloads::Kernel::all() {
                let program = k.assemble();
                match dcg_experiments::differential_check(sim, &program, &program) {
                    Ok(n) => eprintln!("  {:<12} differential ok over {n} instructions", k.name),
                    Err(d) => {
                        eprintln!("  {d}");
                        diverged = true;
                    }
                }
            }
            if diverged {
                eprintln!("kernel differential check FAILED");
                failures += 1;
                continue;
            }
            let runs = dcg_experiments::run_kernels(sim, cache.as_ref());
            println!(
                "{:<12} {:>10} {:>10} {:>8} {:>12} {:>12} {:>12}",
                "kernel", "cycles", "committed", "ipc", "dcg", "plb-ext", "oracle"
            );
            for r in &runs {
                println!(
                    "{:<12} {:>10} {:>10} {:>8.3} {:>11.1}% {:>11.1}% {:>11.1}%",
                    r.name,
                    r.stats.cycles,
                    r.stats.committed,
                    r.stats.ipc(),
                    100.0 * r.dcg_saving(),
                    100.0 * r.plb_ext_saving(),
                    100.0 * r.oracle_saving(),
                );
            }
            let path = out_dir.join("kernel-savings.json");
            if let Some(dir) = path.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            match std::fs::write(
                &path,
                format!("{}\n", dcg_experiments::kernel_savings_json(&runs)),
            ) {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(e) => {
                    eprintln!("failed to write {}: {e}", path.display());
                    failures += 1;
                }
            }
            continue;
        }
        if w == "metrics" {
            // Not a figure table: write the cycle-level metrics document
            // and one utilization-over-time SVG per benchmark.
            let s = suites.first().expect("metrics requires a suite run");
            let path = out_dir.join("suite-metrics.json");
            if let Some(dir) = path.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            match std::fs::write(&path, format!("{}\n", suite_metrics_json(s))) {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(e) => {
                    eprintln!("failed to write {}: {e}", path.display());
                    failures += 1;
                }
            }
            for run in &s.runs {
                let path = out_dir.join(format!("utilization-{}.svg", run.profile.name));
                match write_utilization_svg(run.profile.name, &run.metrics, &path) {
                    Ok(()) => eprintln!("wrote {}", path.display()),
                    Err(e) => {
                        eprintln!("failed to write {}: {e}", path.display());
                        failures += 1;
                    }
                }
            }
            continue;
        }
        let table: FigureTable = match w.as_str() {
            "fig10" => averaged(&fig10),
            "fig11" => averaged(&fig11),
            "fig12" => averaged(&fig12),
            "fig13" => averaged(&fig13),
            "fig14" => averaged(&fig14),
            "fig15" => averaged(&fig15),
            "fig16" => averaged(&fig16),
            "fig17" => fig17(&cfg),
            "alu-sweep" => alu_sweep(&cfg),
            "utilization" => averaged(&|s: &Suite| utilization(s, &cfg.sim)),
            "workload-stats" => workload_stats(&cfg, 200_000),
            "phase-analysis" => phase_analysis(&cfg),
            "summary" => summary(&cfg),
            other => {
                eprintln!("unknown experiment {other}\n{USAGE}");
                failures += 1;
                continue;
            }
        };
        println!("{table}");
        if chart {
            if let Some(bars) = table.columns.first().and_then(|c| table.render_bars(c, 40)) {
                println!("{bars}");
            }
        }
        let path = out_dir.join(format!("{}.csv", table.id));
        match table.write_csv(&path) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("failed to write {}: {e}", path.display());
                failures += 1;
            }
        }
        if svg {
            let path = out_dir.join(format!("{}.svg", table.id));
            match write_svg(&table, &path) {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(e) => {
                    eprintln!("failed to write {}: {e}", path.display());
                    failures += 1;
                }
            }
        }
        if json {
            let path = out_dir.join(format!("{}.json", table.id));
            match table.write_json(&path) {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(e) => {
                    eprintln!("failed to write {}: {e}", path.display());
                    failures += 1;
                }
            }
        }
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `repro serve`: run the experiment daemon (thin wrapper over the
/// `dcg-server` binary's core, sharing its state layout and env knobs).
fn cmd_serve(args: &[String]) -> ExitCode {
    let mut state = PathBuf::from("results/server");
    let mut socket: Option<PathBuf> = None;
    let mut drain = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--state" => match it.next() {
                Some(d) => state = PathBuf::from(d),
                None => return serve_usage("--state requires a directory"),
            },
            "--socket" => match it.next() {
                Some(p) => socket = Some(PathBuf::from(p)),
                None => return serve_usage("--socket requires a path"),
            },
            "--drain" => drain = true,
            other => return serve_usage(&format!("unknown argument {other}")),
        }
    }
    let server = match ExperimentServer::open(ServerConfig::new(state.clone())) {
        Ok(s) => s,
        Err(e) => {
            eprintln!(
                "repro serve: could not open state at {}: {e}",
                state.display()
            );
            return ExitCode::FAILURE;
        }
    };
    if drain {
        server.drain();
        eprintln!("repro serve: backlog drained");
        return ExitCode::SUCCESS;
    }
    let socket = socket.unwrap_or_else(|| state.join("dcg.sock"));
    let _ = std::fs::remove_file(&socket);
    let listener = match std::os::unix::net::UnixListener::bind(&socket) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("repro serve: could not bind {}: {e}", socket.display());
            return ExitCode::FAILURE;
        }
    };
    eprintln!("repro serve: listening on {}", socket.display());
    server.serve(listener);
    let _ = std::fs::remove_file(&socket);
    ExitCode::SUCCESS
}

fn serve_usage(msg: &str) -> ExitCode {
    eprintln!("{msg}\nusage: repro serve [--state DIR] [--socket PATH] [--drain]");
    ExitCode::from(2)
}

/// `repro submit`: submit jobs to a running daemon and (by default)
/// wait for and print each result document.
fn cmd_submit(args: &[String]) -> ExitCode {
    let mut socket = PathBuf::from("results/server/dcg.sock");
    let mut quick = false;
    let mut wait = true;
    let mut specs: Vec<JobSpec> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => match it.next() {
                Some(p) => socket = PathBuf::from(p),
                None => return submit_usage("--socket requires a path"),
            },
            "--quick" => quick = true,
            "--no-wait" => wait = false,
            other if other.starts_with('-') => {
                return submit_usage(&format!("unknown flag {other}"))
            }
            job => match parse_job(job, quick) {
                Some(spec) => specs.push(spec),
                None => return submit_usage(&format!("bad job spec '{job}'")),
            },
        }
    }
    if specs.is_empty() {
        return submit_usage("no jobs given");
    }
    let client = DcgClient::new(&socket);
    let deadline = Duration::from_secs(1800);
    let mut failures = 0;
    for spec in &specs {
        if wait {
            match client.submit_and_wait(spec, Duration::from_millis(200), deadline) {
                Ok((id, json)) => {
                    eprintln!("job {id:016x} ({}) done", spec.label());
                    print!("{}", String::from_utf8_lossy(&json));
                }
                Err(e) => {
                    eprintln!("repro submit: {} failed: {e}", spec.label());
                    failures += 1;
                }
            }
        } else {
            match client.submit(spec, deadline) {
                Ok((id, deduped)) => eprintln!(
                    "job {id:016x} ({}) submitted{}",
                    spec.label(),
                    if deduped { " (deduped)" } else { "" }
                ),
                Err(e) => {
                    eprintln!("repro submit: {} failed: {e}", spec.label());
                    failures += 1;
                }
            }
        }
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn submit_usage(msg: &str) -> ExitCode {
    eprintln!(
        "{msg}\nusage: repro submit [--socket PATH] [--quick] [--no-wait] <job>...\n\
         jobs: simulate:<bench>[:seed]  replay:<bench>[:seed]  metrics[:seed]  faults[:count[:seed]]"
    );
    ExitCode::from(2)
}

/// Parse a `kind[:arg[:arg]]` job spec.
fn parse_job(text: &str, quick: bool) -> Option<JobSpec> {
    let mut parts = text.split(':');
    let kind = parts.next()?;
    let rest: Vec<&str> = parts.collect();
    let seed_at = |i: usize| -> Option<u64> {
        match rest.get(i) {
            Some(s) => s.parse().ok(),
            None => Some(42),
        }
    };
    match kind {
        "simulate" | "replay" => {
            let bench = (*rest.first()?).to_string();
            let seed = seed_at(1)?;
            if rest.len() > 2 {
                return None;
            }
            Some(if kind == "simulate" {
                JobSpec::Simulate { bench, seed, quick }
            } else {
                JobSpec::Replay { bench, seed, quick }
            })
        }
        "metrics" => {
            if rest.len() > 1 {
                return None;
            }
            Some(JobSpec::Metrics {
                seed: seed_at(0)?,
                quick,
            })
        }
        "faults" => {
            if rest.len() > 2 {
                return None;
            }
            let count = match rest.first() {
                Some(s) => s.parse().ok()?,
                None => 32,
            };
            Some(JobSpec::Faults {
                seed: seed_at(1)?,
                count,
            })
        }
        _ => None,
    }
}

/// Print the Table-1 baseline machine (paper §4.1).
fn print_config() {
    let cfg = dcg_sim::SimConfig::baseline_8wide();
    println!("Table 1 — baseline processor configuration");
    println!(
        "  processor : {}-way issue, {}-entry window, {}-entry load/store queue",
        cfg.issue_width, cfg.rob_entries, cfg.lsq_entries
    );
    println!(
        "  exec units: {} int ALUs, {} int mul/div, {} FP ALUs, {} FP mul/div, {} cache ports",
        cfg.int_alus, cfg.int_muldivs, cfg.fp_alus, cfg.fp_muldivs, cfg.mem_ports
    );
    println!(
        "  bpred     : 2-level, {}-entry PHT, {}-bit history, {}-entry {}-way BTB, {}-entry RAS",
        cfg.bpred.pht_entries,
        cfg.bpred.history_bits,
        cfg.bpred.btb_entries,
        cfg.bpred.btb_ways,
        cfg.bpred.ras_entries
    );
    println!(
        "  caches    : {} KB {}-way {}-cycle I/D L1, {} MB {}-way {}-cycle L2, LRU",
        cfg.icache.size_bytes >> 10,
        cfg.icache.ways,
        cfg.icache.latency,
        cfg.l2.size_bytes >> 20,
        cfg.l2.ways,
        cfg.l2.latency
    );
    println!(
        "  memory    : infinite capacity, {}-cycle latency",
        cfg.mem_latency
    );
    println!(
        "  pipeline  : {} stages ({} gateable latch groups)",
        cfg.depth.total(),
        dcg_sim::LatchGroups::new(&cfg.depth).gated_count()
    );
}
