//! The client side: connect, frame requests, and a submit-and-wait
//! loop with its own timeout/backoff discipline.
//!
//! The client is deliberately stateless: every request opens a fresh
//! connection (connections are cheap on a Unix socket, and it makes the
//! retry loop trivially safe — no half-read stream to resynchronize).
//! `Busy` replies are honored by sleeping the server's retry-after hint
//! before resubmitting; transport errors back off exponentially.

use std::fmt;
use std::io;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use crate::jobs::JobSpec;
use crate::protocol::{err_str, read_frame, write_frame, ProtocolError, Reply, Request};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Could not reach or talk to the server (after retries).
    Io(io::Error),
    /// The server answered with a frame the client could not decode.
    Protocol(ProtocolError),
    /// The server answered with a structured error.
    Server {
        /// The [`crate::protocol::err_code`] value.
        code: u32,
        /// Server-provided detail.
        message: String,
    },
    /// The job reached a terminal failure state.
    JobFailed {
        /// The job id.
        id: u64,
        /// The failure message recorded by the server.
        message: String,
    },
    /// The overall wait deadline elapsed.
    TimedOut {
        /// What the client was waiting on.
        what: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "server unreachable: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error ({}): {message}", err_str(*code))
            }
            ClientError::JobFailed { id, message } => {
                write!(f, "job {id:016x} failed: {message}")
            }
            ClientError::TimedOut { what } => write!(f, "timed out waiting for {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        match e {
            ProtocolError::Io(e) => ClientError::Io(e),
            other => ClientError::Protocol(other),
        }
    }
}

/// A client for one server socket.
#[derive(Debug, Clone)]
pub struct DcgClient {
    socket: PathBuf,
    /// Per-request I/O timeout.
    pub io_timeout: Duration,
    /// Transport-level connect/send retries before giving up.
    pub retries: u32,
    /// First transport retry delay; doubles per attempt.
    pub backoff_base: Duration,
}

impl DcgClient {
    /// A client with default timeouts (10 s I/O, 5 transport retries
    /// starting at 50 ms).
    #[must_use]
    pub fn new(socket: &Path) -> DcgClient {
        DcgClient {
            socket: socket.to_path_buf(),
            io_timeout: Duration::from_secs(10),
            retries: 5,
            backoff_base: Duration::from_millis(50),
        }
    }

    /// One request/reply exchange over a fresh connection, with
    /// transport-level retry + exponential backoff.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] once retries are exhausted, or any decoded
    /// protocol failure (not retried — a malformed reply will not
    /// improve).
    pub fn request(&self, req: &Request) -> Result<Reply, ClientError> {
        let payload = req.encode();
        let mut last_err: Option<io::Error> = None;
        for attempt in 0..=self.retries {
            if attempt > 0 {
                let backoff = self
                    .backoff_base
                    .saturating_mul(1u32 << (attempt - 1).min(16));
                std::thread::sleep(backoff);
            }
            match self.exchange(&payload) {
                Ok(reply) => return Ok(reply),
                Err(ClientError::Io(e)) => last_err = Some(e),
                Err(other) => return Err(other),
            }
        }
        Err(ClientError::Io(
            last_err.unwrap_or_else(|| io::Error::other("no attempts made")),
        ))
    }

    fn exchange(&self, payload: &[u8]) -> Result<Reply, ClientError> {
        let stream = UnixStream::connect(&self.socket).map_err(ClientError::Io)?;
        stream
            .set_read_timeout(Some(self.io_timeout))
            .map_err(ClientError::Io)?;
        stream
            .set_write_timeout(Some(self.io_timeout))
            .map_err(ClientError::Io)?;
        let mut stream = stream;
        write_frame(&mut stream, payload)?;
        let reply = read_frame(&mut stream)?;
        Ok(Reply::decode(&reply)?)
    }

    /// Ask the server to shut down gracefully.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or an unexpected reply.
    pub fn shutdown(&self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Reply::ShuttingDown => Ok(()),
            Reply::Err { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(ProtocolError::Malformed(
                unexpected_reply(&other),
            ))),
        }
    }

    /// Submit a job, honoring `Busy` retry-after hints, and return the
    /// job id plus whether it deduplicated.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, a server-side error reply, or
    /// [`ClientError::TimedOut`] when the server stays busy past
    /// `deadline`.
    pub fn submit(&self, spec: &JobSpec, deadline: Duration) -> Result<(u64, bool), ClientError> {
        let start = Instant::now();
        loop {
            match self.request(&Request::Submit(spec.clone()))? {
                Reply::Submitted { id, deduped } => return Ok((id, deduped)),
                Reply::Busy { retry_after_ms } => {
                    if start.elapsed() > deadline {
                        return Err(ClientError::TimedOut {
                            what: format!("queue space for {}", spec.label()),
                        });
                    }
                    std::thread::sleep(Duration::from_millis(retry_after_ms.clamp(10, 5_000)));
                }
                Reply::Err { code, message } => return Err(ClientError::Server { code, message }),
                other => {
                    return Err(ClientError::Protocol(ProtocolError::Malformed(
                        unexpected_reply(&other),
                    )))
                }
            }
        }
    }

    /// Submit and poll until the job completes, returning its result
    /// document.
    ///
    /// # Errors
    ///
    /// [`ClientError::JobFailed`] for terminal job failures,
    /// [`ClientError::TimedOut`] past `deadline`, or any transport
    /// failure.
    pub fn submit_and_wait(
        &self,
        spec: &JobSpec,
        poll: Duration,
        deadline: Duration,
    ) -> Result<(u64, Vec<u8>), ClientError> {
        let start = Instant::now();
        let (id, _) = self.submit(spec, deadline)?;
        loop {
            match self.request(&Request::Result(id))? {
                Reply::Result { json, .. } => return Ok((id, json)),
                Reply::NotReady { .. } => {
                    if start.elapsed() > deadline {
                        return Err(ClientError::TimedOut {
                            what: format!("job {id:016x} ({})", spec.label()),
                        });
                    }
                    std::thread::sleep(poll);
                }
                Reply::Err { code, message } => {
                    if code == crate::protocol::err_code::JOB_FAILED {
                        return Err(ClientError::JobFailed { id, message });
                    }
                    return Err(ClientError::Server { code, message });
                }
                other => {
                    return Err(ClientError::Protocol(ProtocolError::Malformed(
                        unexpected_reply(&other),
                    )))
                }
            }
        }
    }
}

fn unexpected_reply(reply: &Reply) -> &'static str {
    match reply {
        Reply::Pong => "unexpected Pong reply",
        Reply::Submitted { .. } => "unexpected Submitted reply",
        Reply::Busy { .. } => "unexpected Busy reply",
        Reply::Status { .. } => "unexpected Status reply",
        Reply::Result { .. } => "unexpected Result reply",
        Reply::NotReady { .. } => "unexpected NotReady reply",
        Reply::Health(_) => "unexpected Health reply",
        Reply::Err { .. } => "unexpected Err reply",
        Reply::ShuttingDown => "unexpected ShuttingDown reply",
    }
}
