//! # dcg-server — crash-resumable experiment daemon
//!
//! A single-process server accepting simulate/replay/metrics/fault-
//! campaign jobs over a length-prefixed, checksummed command protocol
//! on a Unix socket:
//!
//! * **Journaled queue** — every job transition (submitted → running →
//!   done/failed/retrying) is appended to a write-ahead log
//!   (`JOBS.dcgwal`) with the same torn-tail-discard discipline as the
//!   trace store journal, before it takes effect. `kill -9` at any
//!   point, then restart, resumes incomplete jobs and produces
//!   byte-identical result documents (a CI-enforced invariant via the
//!   deterministic [`SERVER_CRASH_ENV`] abort hook).
//! * **Deadlines, retries, quarantine** — each job class has an
//!   execution deadline; retryable failures (deadline misses, caught
//!   panics, transient store errors) back off exponentially and retry
//!   up to a budget, after which the job is quarantined. Terminal
//!   errors (unknown benchmark) fail immediately.
//! * **Graceful degradation** — the queue is bounded: overload answers
//!   an explicit `Busy` with a retry-after hint, never
//!   accept-then-drop. A panicking job body is caught and classified;
//!   it cannot take the daemon down. Replay jobs ride the trace
//!   store's own degradation (read-only fallback, fail-open caching).
//! * **Dedup** — the job id is the digest of the canonical spec
//!   encoding, so identical submissions share one execution, and
//!   replay jobs dedup their simulation work against the
//!   [`TraceStore`](dcg_core::TraceStore) underneath.
//!
//! The `dcg-server` binary runs the daemon; the `repro` binary gains
//! `serve` and `submit` subcommands speaking the same protocol through
//! [`DcgClient`]. See `DESIGN.md` §16 for the architecture and the
//! crash matrix.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod client;
mod jobs;
mod protocol;
mod server;
mod wal;

pub use client::{ClientError, DcgClient};
pub use jobs::{run_job, JobClass, JobError, JobSpec};
pub use protocol::{
    err_code, err_str, read_frame, write_frame, ProtocolError, Reply, Request, FRAME_MAGIC,
    MAX_FRAME_LEN,
};
pub use server::{
    ExperimentServer, JobState, ServerConfig, ServerCounters, SubmitOutcome, JOBS_DIR,
    SERVER_CRASH_ENV, SERVER_QUEUE_ENV, SERVER_RETRIES_ENV,
};
pub use wal::{decode_wal, JobWal, WalRecord, JOBS_WAL_FILE, JOBS_WAL_MAGIC};
