//! The experiment daemon: bounded journaled job queue, worker pool,
//! deadlines, retries with exponential backoff, poison-job quarantine,
//! and crash-resume.
//!
//! ## Job state machine
//!
//! ```text
//!                 submit (WAL: SUBMIT)
//!                     │
//!                     ▼
//!   ┌────────────► queued ◄──────────────┐
//!   │                 │                   │ backoff elapsed
//!   │     worker picks up (WAL: START)    │
//!   │                 ▼                backoff
//!   │              running ────────────────┘
//!   │                 │ \  retryable failure / deadline / panic,
//!   │                 │  \ attempts left (WAL: FAIL terminal=0)
//!   │   result rename │
//!   │   (WAL: DONE)   │ terminal error or attempts exhausted
//!   │                 │    (WAL: FAIL terminal=1)
//!   │                 ▼         ▼
//!   │               done    failed / quarantined
//!   └── restart re-queues any job without a terminal record
//! ```
//!
//! ## Crash-resume
//!
//! Every transition is journaled through [`JobWal`] *before* it takes
//! effect, and result documents are committed with the temp-file +
//! rename discipline the trace store uses. On restart, jobs with a
//! `SUBMIT` but no terminal record are re-queued and re-run; because
//! every job body is a pure function of its spec, the resumed run
//! produces **byte-identical** result documents. The deterministic
//! abort hook ([`SERVER_CRASH_ENV`]) makes this a CI invariant rather
//! than a hope: `before-journal:N` aborts before the Nth submit is
//! journaled, `before-commit:N` aborts with the Nth result computed but
//! not yet renamed into place, `after-commit:N` aborts between the
//! rename and its `DONE` record (restart detects the orphaned result
//! and completes the commit without re-running).
//!
//! ## Degradation
//!
//! A full queue answers `Busy` with a retry-after hint and does *not*
//! accept the job — the server never accepts work it may drop. A
//! panicking job body is caught, classified as a retryable failure and
//! counted; it cannot take the daemon down. A worker that exceeds the
//! job's per-class deadline abandons the attempt (the body thread is
//! detached and its result discarded) and schedules a retry.

use std::collections::{HashMap, VecDeque};
use std::fs::{self, OpenOptions};
use std::io::Write;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use dcg_core::TraceCache;
use dcg_testkit::json::Json;

use crate::jobs::{run_job, JobClass, JobError, JobSpec};
use crate::protocol::{err_code, read_frame, write_frame, ProtocolError, Reply, Request};
use crate::wal::{JobWal, WalRecord};

/// Environment variable selecting a deterministic crash point
/// (`before-journal:N`, `before-commit:N` or `after-commit:N`): the
/// process aborts at the Nth op of that stage. Test/CI only.
pub const SERVER_CRASH_ENV: &str = "DCG_SERVER_CRASH";

/// Environment variable bounding the job queue (`dcg-server` and
/// `repro serve` read it; the library takes [`ServerConfig`] directly).
pub const SERVER_QUEUE_ENV: &str = "DCG_SERVER_QUEUE";

/// Environment variable bounding execution attempts per job.
pub const SERVER_RETRIES_ENV: &str = "DCG_SERVER_RETRIES";

/// Subdirectory of the state directory holding committed result
/// documents (`job-<id>.json`).
pub const JOBS_DIR: &str = "jobs";

// ---------------------------------------------------------------------------
// Crash hook (mirrors DCG_STORE_CRASH in the trace store)
// ---------------------------------------------------------------------------

/// Process-global submit-journal ordinal, driving `before-journal:N`.
static SUBMIT_OPS: AtomicU64 = AtomicU64::new(0);
/// Process-global result-commit ordinal, driving `before-commit:N` and
/// `after-commit:N`.
static COMMIT_OPS: AtomicU64 = AtomicU64::new(0);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CrashPoint {
    /// Before the Nth SUBMIT record is journaled (the client has not
    /// been acknowledged; the job is simply lost, which is consistent).
    BeforeJournal,
    /// After the Nth result document is computed and written to its
    /// temp file, before the rename — the torn state a restart must
    /// re-run.
    BeforeCommit,
    /// After the Nth rename, before the DONE record — the orphaned
    /// state a restart must complete without re-running.
    AfterCommit,
}

fn crash_plan() -> Option<(CrashPoint, u64)> {
    static PLAN: OnceLock<Option<(CrashPoint, u64)>> = OnceLock::new();
    *PLAN.get_or_init(|| {
        let v = std::env::var(SERVER_CRASH_ENV).ok()?;
        let (point, n) = v.split_once(':')?;
        let point = match point {
            "before-journal" => CrashPoint::BeforeJournal,
            "before-commit" => CrashPoint::BeforeCommit,
            "after-commit" => CrashPoint::AfterCommit,
            _ => return None,
        };
        Some((point, n.parse().ok()?))
    })
}

fn crash_hook(point: CrashPoint, op: u64) {
    if let Some((p, n)) = crash_plan() {
        if p == point && n == op {
            eprintln!(
                "{SERVER_CRASH_ENV}: aborting at {} of server op {op}",
                match point {
                    CrashPoint::BeforeJournal => "before-journal",
                    CrashPoint::BeforeCommit => "before-commit",
                    CrashPoint::AfterCommit => "after-commit",
                }
            );
            std::process::abort();
        }
    }
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Server tuning. Env knobs are read by the binaries only; the library
/// is configured programmatically.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// State directory: job WAL, result documents, replay trace store.
    pub state_dir: PathBuf,
    /// Worker threads executing job bodies.
    pub workers: usize,
    /// Jobs admitted but not yet terminal before `submit` answers
    /// `Busy`.
    pub queue_capacity: usize,
    /// Execution attempts before a retryable job is quarantined.
    pub max_attempts: u32,
    /// First retry delay; doubles per attempt.
    pub backoff_base: Duration,
    /// Upper bound on the retry delay.
    pub backoff_cap: Duration,
    /// Deadline for single-benchmark jobs.
    pub deadline_single: Duration,
    /// Deadline for suite/campaign jobs.
    pub deadline_heavy: Duration,
}

impl ServerConfig {
    /// Defaults rooted at `state_dir`: workers = available parallelism
    /// (capped at 4 — job bodies shard internally via the sweep pool),
    /// a 64-job queue, 3 attempts, 50 ms base / 2 s cap backoff, 2 min
    /// single-job and 10 min heavy-job deadlines.
    #[must_use]
    pub fn new(state_dir: PathBuf) -> ServerConfig {
        let parallelism = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        ServerConfig {
            state_dir,
            workers: parallelism.min(4),
            queue_capacity: 64,
            max_attempts: 3,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            deadline_single: Duration::from_secs(120),
            deadline_heavy: Duration::from_secs(600),
        }
    }

    fn deadline_for(&self, class: JobClass) -> Duration {
        match class {
            JobClass::Single => self.deadline_single,
            JobClass::Heavy => self.deadline_heavy,
        }
    }
}

// ---------------------------------------------------------------------------
// Job table
// ---------------------------------------------------------------------------

/// Public view of a job's lifecycle state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for a worker.
    Queued,
    /// A worker is executing an attempt.
    Running,
    /// A retryable failure; re-queued once the backoff elapses.
    Backoff,
    /// Result document committed.
    Done,
    /// Terminal (non-retryable) failure.
    Failed(String),
    /// Retryable failures exhausted the attempt budget.
    Quarantined(String),
}

impl JobState {
    /// The wire label (`queued`, `running`, ...).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Backoff => "backoff",
            JobState::Done => "done",
            JobState::Failed(_) => "failed",
            JobState::Quarantined(_) => "quarantined",
        }
    }

    /// Whether the job can make no further progress (done, failed or
    /// quarantined).
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed(_) | JobState::Quarantined(_)
        )
    }
}

#[derive(Debug)]
struct Job {
    spec: JobSpec,
    state: JobState,
    attempts: u32,
}

#[derive(Debug, Default)]
struct Inner {
    jobs: HashMap<u64, Job>,
    /// Ids ready to run, FIFO.
    ready: VecDeque<u64>,
    /// Ids waiting out a backoff, with their due time (kept sorted by
    /// due time on insert).
    delayed: Vec<(Instant, u64)>,
    /// Jobs admitted and not yet terminal (the bounded-queue measure).
    open: usize,
    running: usize,
}

/// Monotonic counters exposed through the health document.
#[derive(Debug, Default)]
pub struct ServerCounters {
    /// Jobs accepted (deduped submits not included).
    pub accepted: AtomicU64,
    /// Submits answered with `Busy`.
    pub rejected_busy: AtomicU64,
    /// Submits deduplicated against a known job.
    pub deduped: AtomicU64,
    /// Attempts that failed retryably (including deadlines/panics).
    pub retries: AtomicU64,
    /// Attempts that blew their deadline.
    pub deadline_misses: AtomicU64,
    /// Job bodies that panicked (caught, classified, survived).
    pub panics: AtomicU64,
    /// Jobs quarantined after exhausting attempts.
    pub quarantined: AtomicU64,
    /// Jobs completed.
    pub completed: AtomicU64,
}

// ---------------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------------

/// Outcome of a submit call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Accepted (or already known when `deduped`).
    Accepted {
        /// The job id.
        id: u64,
        /// Whether the spec deduplicated against an existing job.
        deduped: bool,
    },
    /// Bounded queue full; nothing was accepted.
    Busy {
        /// Suggested retry delay, milliseconds.
        retry_after_ms: u64,
    },
    /// The WAL could not journal the submit durably.
    JournalError(String),
}

/// The experiment daemon. Construct with [`ExperimentServer::open`]
/// (which replays the WAL), then either [`serve`](Self::serve) on a
/// Unix socket or [`drain`](Self::drain) to run the recovered backlog
/// to completion and return.
#[derive(Debug)]
pub struct ExperimentServer {
    cfg: ServerConfig,
    wal: JobWal,
    inner: Mutex<Inner>,
    work: Condvar,
    shutdown: AtomicBool,
    /// Counters for the health document.
    pub counters: ServerCounters,
}

impl ExperimentServer {
    /// Open the server state: create directories, replay the job WAL,
    /// rebuild the job table and re-queue every job without a terminal
    /// record. Jobs whose result document already exists but whose
    /// `DONE` record was lost (an `after-commit` crash) are completed
    /// idempotently — the `DONE` is journaled now, without re-running.
    ///
    /// # Errors
    ///
    /// Unrecoverable state-directory I/O only.
    pub fn open(cfg: ServerConfig) -> std::io::Result<Arc<ExperimentServer>> {
        fs::create_dir_all(cfg.state_dir.join(JOBS_DIR))?;
        let (wal, records) = JobWal::open(&cfg.state_dir)?;

        // Fold the record stream into final per-job states.
        let mut jobs: HashMap<u64, Job> = HashMap::new();
        let mut order: Vec<u64> = Vec::new();
        for rec in records {
            match rec {
                WalRecord::Submit { id, spec } => {
                    jobs.entry(id).or_insert_with(|| {
                        order.push(id);
                        Job {
                            spec,
                            state: JobState::Queued,
                            attempts: 0,
                        }
                    });
                }
                WalRecord::Start { id, attempt } => {
                    if let Some(j) = jobs.get_mut(&id) {
                        j.attempts = j.attempts.max(attempt);
                        j.state = JobState::Running;
                    }
                }
                WalRecord::Done { id } => {
                    if let Some(j) = jobs.get_mut(&id) {
                        j.state = JobState::Done;
                    }
                }
                WalRecord::Fail {
                    id,
                    attempt,
                    terminal,
                    message,
                } => {
                    if let Some(j) = jobs.get_mut(&id) {
                        j.attempts = j.attempts.max(attempt);
                        j.state = if terminal {
                            if attempt >= cfg.max_attempts {
                                JobState::Quarantined(message)
                            } else {
                                JobState::Failed(message)
                            }
                        } else {
                            JobState::Queued
                        };
                    }
                }
            }
        }

        let server = ExperimentServer {
            cfg,
            wal,
            inner: Mutex::new(Inner::default()),
            work: Condvar::new(),
            shutdown: AtomicBool::new(false),
            counters: ServerCounters::default(),
        };

        {
            let mut inner = server.inner.lock().expect("server lock");
            for id in order {
                let mut job = jobs.remove(&id).expect("folded job");
                match &job.state {
                    JobState::Done => {
                        if !server.result_path(id).is_file() {
                            // DONE journaled but the result vanished
                            // (manual deletion): re-run.
                            job.state = JobState::Queued;
                        }
                    }
                    JobState::Queued | JobState::Running | JobState::Backoff => {
                        if server.result_path(id).is_file() {
                            // after-commit crash: the rename happened
                            // but DONE was lost. Complete the commit.
                            server.wal.append(&WalRecord::Done { id })?;
                            job.state = JobState::Done;
                        } else {
                            job.state = JobState::Queued;
                        }
                    }
                    JobState::Failed(_) | JobState::Quarantined(_) => {}
                }
                if job.state == JobState::Queued {
                    inner.ready.push_back(id);
                    inner.open += 1;
                }
                inner.jobs.insert(id, job);
            }
        }
        Ok(Arc::new(server))
    }

    /// The committed result document path for a job id.
    #[must_use]
    pub fn result_path(&self, id: u64) -> PathBuf {
        self.cfg
            .state_dir
            .join(JOBS_DIR)
            .join(format!("job-{id:016x}.json"))
    }

    /// Submit a job: dedup by spec digest, enforce the queue bound,
    /// journal, enqueue.
    pub fn submit(&self, spec: JobSpec) -> SubmitOutcome {
        let id = spec.id();
        let mut inner = self.inner.lock().expect("server lock");
        if inner.jobs.contains_key(&id) {
            self.counters.deduped.fetch_add(1, Ordering::Relaxed);
            return SubmitOutcome::Accepted { id, deduped: true };
        }
        if inner.open >= self.cfg.queue_capacity {
            self.counters.rejected_busy.fetch_add(1, Ordering::Relaxed);
            // Scale the hint with how deep the backlog is relative to
            // the worker pool.
            let per_worker = inner.open / self.cfg.workers.max(1);
            return SubmitOutcome::Busy {
                retry_after_ms: 100 * (per_worker as u64 + 1),
            };
        }
        let op = SUBMIT_OPS.fetch_add(1, Ordering::Relaxed) + 1;
        crash_hook(CrashPoint::BeforeJournal, op);
        if let Err(e) = self.wal.append(&WalRecord::Submit {
            id,
            spec: spec.clone(),
        }) {
            // Never accept-then-drop: an unjournaled job is not a job.
            return SubmitOutcome::JournalError(format!("job WAL append failed: {e}"));
        }
        inner.jobs.insert(
            id,
            Job {
                spec,
                state: JobState::Queued,
                attempts: 0,
            },
        );
        inner.ready.push_back(id);
        inner.open += 1;
        self.counters.accepted.fetch_add(1, Ordering::Relaxed);
        drop(inner);
        self.work.notify_one();
        SubmitOutcome::Accepted { id, deduped: false }
    }

    /// State and attempt count of a job, if known.
    #[must_use]
    pub fn status(&self, id: u64) -> Option<(JobState, u32)> {
        let inner = self.inner.lock().expect("server lock");
        inner.jobs.get(&id).map(|j| (j.state.clone(), j.attempts))
    }

    /// The committed result document of a `Done` job.
    #[must_use]
    pub fn result(&self, id: u64) -> Option<Vec<u8>> {
        match self.status(id)? {
            (JobState::Done, _) => fs::read(self.result_path(id)).ok(),
            _ => None,
        }
    }

    /// The health document: queue depth, per-state job counts, server
    /// counters and the trace cache health (including read-only skips).
    #[must_use]
    pub fn health_json(&self) -> String {
        let inner = self.inner.lock().expect("server lock");
        let mut by_state: Vec<(&'static str, u64)> = Vec::new();
        for label in [
            "queued",
            "running",
            "backoff",
            "done",
            "failed",
            "quarantined",
        ] {
            let n = inner
                .jobs
                .values()
                .filter(|j| j.state.label() == label)
                .count() as u64;
            by_state.push((label, n));
        }
        let open = inner.open as u64;
        drop(inner);
        let c = &self.counters;
        let cache = TraceCache::new(self.cfg.state_dir.join("traces"));
        let ch = cache.health();
        let doc = Json::obj([
            ("open_jobs", Json::u64(open)),
            ("queue_capacity", Json::u64(self.cfg.queue_capacity as u64)),
            ("workers", Json::u64(self.cfg.workers as u64)),
            (
                "jobs",
                Json::obj(
                    by_state
                        .into_iter()
                        .map(|(k, v)| (k, Json::u64(v)))
                        .collect::<Vec<_>>(),
                ),
            ),
            (
                "counters",
                Json::obj([
                    ("accepted", Json::u64(c.accepted.load(Ordering::Relaxed))),
                    (
                        "rejected_busy",
                        Json::u64(c.rejected_busy.load(Ordering::Relaxed)),
                    ),
                    ("deduped", Json::u64(c.deduped.load(Ordering::Relaxed))),
                    ("retries", Json::u64(c.retries.load(Ordering::Relaxed))),
                    (
                        "deadline_misses",
                        Json::u64(c.deadline_misses.load(Ordering::Relaxed)),
                    ),
                    ("panics", Json::u64(c.panics.load(Ordering::Relaxed))),
                    (
                        "quarantined",
                        Json::u64(c.quarantined.load(Ordering::Relaxed)),
                    ),
                    ("completed", Json::u64(c.completed.load(Ordering::Relaxed))),
                ]),
            ),
            (
                "cache_health",
                Json::obj([
                    ("store_failures", Json::u64(ch.store_failures)),
                    ("evict_failures", Json::u64(ch.evict_failures)),
                    ("replay_failures", Json::u64(ch.replay_failures)),
                    ("key_collisions", Json::u64(ch.key_collisions)),
                    ("readonly_skips", Json::u64(ch.readonly_skips)),
                ]),
            ),
        ]);
        doc.to_string()
    }

    // -----------------------------------------------------------------
    // Worker pool
    // -----------------------------------------------------------------

    /// Spawn the worker pool. Threads exit once shutdown is requested
    /// (after finishing their current job) or, under `drain`, once no
    /// open jobs remain.
    fn spawn_workers(self: &Arc<Self>, drain: bool) -> Vec<std::thread::JoinHandle<()>> {
        (0..self.cfg.workers.max(1))
            .map(|_| {
                let server = Arc::clone(self);
                std::thread::spawn(move || server.worker_loop(drain))
            })
            .collect()
    }

    fn worker_loop(self: &Arc<Self>, drain: bool) {
        loop {
            let claimed = {
                let mut inner = self.inner.lock().expect("server lock");
                loop {
                    // Promote delayed jobs whose backoff elapsed.
                    let now = Instant::now();
                    while let Some(&(due, id)) = inner.delayed.first() {
                        if due > now {
                            break;
                        }
                        inner.delayed.remove(0);
                        if let Some(j) = inner.jobs.get_mut(&id) {
                            j.state = JobState::Queued;
                        }
                        inner.ready.push_back(id);
                    }
                    if let Some(id) = inner.ready.pop_front() {
                        inner.running += 1;
                        let job = inner.jobs.get_mut(&id).expect("queued job exists");
                        job.attempts += 1;
                        job.state = JobState::Running;
                        break Some((id, job.spec.clone(), job.attempts));
                    }
                    if self.shutdown.load(Ordering::Relaxed) {
                        break None;
                    }
                    if drain && inner.open == 0 {
                        break None;
                    }
                    let wait = inner
                        .delayed
                        .first()
                        .map(|&(due, _)| due.saturating_duration_since(Instant::now()))
                        .unwrap_or(Duration::from_millis(100))
                        .min(Duration::from_millis(100));
                    let (guard, _) = self
                        .work
                        .wait_timeout(inner, wait.max(Duration::from_millis(1)))
                        .expect("server lock");
                    inner = guard;
                }
            };
            let Some((id, spec, attempt)) = claimed else {
                self.work.notify_all();
                return;
            };
            // Journal the attempt. A WAL failure here is not fatal: the
            // attempt simply is not recorded, and a crash re-runs it.
            if let Err(e) = self.wal.append(&WalRecord::Start { id, attempt }) {
                eprintln!("warning: job WAL START append failed: {e}");
            }
            eprintln!("job {id:016x} attempt {attempt}: {}", spec.label());
            let outcome = self.execute_with_deadline(&spec);
            self.conclude(id, attempt, outcome);
        }
    }

    /// Run the body on a dedicated thread, bounded by the class
    /// deadline. On timeout the body thread is detached — its eventual
    /// result is discarded (the receiver is dropped) and the attempt is
    /// classified a retryable deadline miss.
    fn execute_with_deadline(&self, spec: &JobSpec) -> Result<String, JobError> {
        let deadline = self.cfg.deadline_for(spec.class());
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        let body_spec = spec.clone();
        let state_dir = self.cfg.state_dir.clone();
        std::thread::spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_job(&body_spec, &state_dir)
            }));
            let _ = tx.send(result);
        });
        match rx.recv_timeout(deadline) {
            Ok(Ok(result)) => result,
            Ok(Err(panic)) => {
                self.counters.panics.fetch_add(1, Ordering::Relaxed);
                Err(JobError {
                    message: format!("job body panicked: {}", panic_message(&panic)),
                    retryable: true,
                })
            }
            Err(_) => {
                self.counters
                    .deadline_misses
                    .fetch_add(1, Ordering::Relaxed);
                Err(JobError {
                    message: format!("deadline of {deadline:?} exceeded"),
                    retryable: true,
                })
            }
        }
    }

    /// Commit or fail an attempt, journaling the transition.
    fn conclude(&self, id: u64, attempt: u32, outcome: Result<String, JobError>) {
        match outcome {
            Ok(json) => match self.commit_result(id, &json) {
                Ok(()) => {
                    let mut inner = self.inner.lock().expect("server lock");
                    if let Some(j) = inner.jobs.get_mut(&id) {
                        j.state = JobState::Done;
                    }
                    inner.open = inner.open.saturating_sub(1);
                    inner.running = inner.running.saturating_sub(1);
                    drop(inner);
                    self.counters.completed.fetch_add(1, Ordering::Relaxed);
                    self.work.notify_all();
                }
                Err(e) => self.fail_attempt(
                    id,
                    attempt,
                    JobError {
                        message: format!("result commit failed: {e}"),
                        retryable: true,
                    },
                ),
            },
            Err(e) => self.fail_attempt(id, attempt, e),
        }
    }

    /// Write the result document durably: temp file + `sync_data` +
    /// rename, with the crash hook at the torn point and after the
    /// rename.
    fn commit_result(&self, id: u64, json: &str) -> std::io::Result<()> {
        let op = COMMIT_OPS.fetch_add(1, Ordering::Relaxed) + 1;
        let final_path = self.result_path(id);
        let tmp_path = final_path.with_extension(format!("tmp.{}", std::process::id()));
        {
            let mut f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp_path)?;
            f.write_all(json.as_bytes())?;
            f.sync_data()?;
        }
        crash_hook(CrashPoint::BeforeCommit, op);
        fs::rename(&tmp_path, &final_path)?;
        crash_hook(CrashPoint::AfterCommit, op);
        self.wal.append(&WalRecord::Done { id })?;
        Ok(())
    }

    fn fail_attempt(&self, id: u64, attempt: u32, err: JobError) {
        let exhausted = attempt >= self.cfg.max_attempts;
        let terminal = !err.retryable || exhausted;
        if let Err(e) = self.wal.append(&WalRecord::Fail {
            id,
            attempt,
            terminal,
            message: err.message.clone(),
        }) {
            eprintln!("warning: job WAL FAIL append failed: {e}");
        }
        let mut inner = self.inner.lock().expect("server lock");
        inner.running = inner.running.saturating_sub(1);
        if terminal {
            inner.open = inner.open.saturating_sub(1);
            if let Some(j) = inner.jobs.get_mut(&id) {
                j.state = if err.retryable {
                    self.counters.quarantined.fetch_add(1, Ordering::Relaxed);
                    JobState::Quarantined(err.message.clone())
                } else {
                    JobState::Failed(err.message.clone())
                };
            }
            eprintln!(
                "job {id:016x} attempt {attempt} FAILED terminally: {}",
                err.message
            );
        } else {
            self.counters.retries.fetch_add(1, Ordering::Relaxed);
            let backoff = self
                .cfg
                .backoff_base
                .saturating_mul(1u32 << (attempt - 1).min(16))
                .min(self.cfg.backoff_cap);
            let due = Instant::now() + backoff;
            if let Some(j) = inner.jobs.get_mut(&id) {
                j.state = JobState::Backoff;
            }
            let pos = inner.delayed.partition_point(|&(d, _)| d <= due);
            inner.delayed.insert(pos, (due, id));
            eprintln!(
                "job {id:016x} attempt {attempt} failed ({}); retrying in {backoff:?}",
                err.message
            );
        }
        drop(inner);
        self.work.notify_all();
    }

    // -----------------------------------------------------------------
    // Entry points
    // -----------------------------------------------------------------

    /// Run the recovered backlog to completion with the worker pool,
    /// then return. Used by `--drain` (the CI restart step) and tests.
    pub fn drain(self: &Arc<Self>) {
        let workers = self.spawn_workers(true);
        for w in workers {
            let _ = w.join();
        }
    }

    /// Serve requests on `listener` until a `Shutdown` request arrives,
    /// running jobs on the worker pool. Consumes the accept loop.
    pub fn serve(self: &Arc<Self>, listener: UnixListener) {
        let workers = self.spawn_workers(false);
        listener
            .set_nonblocking(true)
            .expect("nonblocking listener");
        while !self.shutdown.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let server = Arc::clone(self);
                    std::thread::spawn(move || server.handle_connection(stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => {
                    eprintln!("accept failed: {e}");
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
        }
        self.work.notify_all();
        for w in workers {
            let _ = w.join();
        }
    }

    /// Handle one client connection: frames in, frames out, until EOF
    /// or a protocol error. Read timeouts keep a stalled client from
    /// pinning the handler thread forever.
    fn handle_connection(self: &Arc<Self>, mut stream: UnixStream) {
        let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
        loop {
            let payload = match read_frame(&mut stream) {
                Ok(p) => p,
                Err(ProtocolError::Truncated { got: 0, .. }) => return, // clean EOF
                Err(ProtocolError::Io(_)) => return,
                Err(e) => {
                    // Malformed frame: answer with a structured error,
                    // then drop the connection (framing is lost).
                    let reply = Reply::Err {
                        code: err_code::BAD_REQUEST,
                        message: e.to_string(),
                    };
                    let _ = write_frame(&mut stream, &reply.encode());
                    return;
                }
            };
            let reply = match Request::decode(&payload) {
                Ok(req) => self.answer(req),
                Err(e) => Reply::Err {
                    code: err_code::BAD_REQUEST,
                    message: e.to_string(),
                },
            };
            let shutting_down = reply == Reply::ShuttingDown;
            if write_frame(&mut stream, &reply.encode()).is_err() {
                return;
            }
            if shutting_down {
                return;
            }
        }
    }

    /// Compute the reply for one request.
    #[must_use]
    pub fn answer(&self, req: Request) -> Reply {
        match req {
            Request::Ping => Reply::Pong,
            Request::Submit(spec) => match self.submit(spec) {
                SubmitOutcome::Accepted { id, deduped } => Reply::Submitted { id, deduped },
                SubmitOutcome::Busy { retry_after_ms } => Reply::Busy { retry_after_ms },
                SubmitOutcome::JournalError(message) => Reply::Err {
                    code: err_code::STORAGE,
                    message,
                },
            },
            Request::Status(id) => match self.status(id) {
                Some((state, attempts)) => Reply::Status {
                    id,
                    state: state.label().to_string(),
                    attempts,
                },
                None => Reply::Err {
                    code: err_code::UNKNOWN_JOB,
                    message: format!("no job {id:016x}"),
                },
            },
            Request::Result(id) => match self.status(id) {
                Some((JobState::Done, _)) => match self.result(id) {
                    Some(json) => Reply::Result { id, json },
                    None => Reply::Err {
                        code: err_code::STORAGE,
                        message: format!("result document for job {id:016x} unreadable"),
                    },
                },
                Some((JobState::Failed(m) | JobState::Quarantined(m), _)) => Reply::Err {
                    code: err_code::JOB_FAILED,
                    message: m,
                },
                Some((state, _)) => Reply::NotReady {
                    id,
                    state: state.label().to_string(),
                },
                None => Reply::Err {
                    code: err_code::UNKNOWN_JOB,
                    message: format!("no job {id:016x}"),
                },
            },
            Request::Health => Reply::Health(self.health_json()),
            Request::Shutdown => {
                self.shutdown.store(true, Ordering::Relaxed);
                self.work.notify_all();
                Reply::ShuttingDown
            }
        }
    }
}

/// Best-effort panic payload extraction (mirrors the suite's handling).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/tmp")
            .join(format!("server-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn spec(bench: &str, seed: u64) -> JobSpec {
        JobSpec::Simulate {
            bench: bench.into(),
            seed,
            quick: true,
        }
    }

    #[test]
    fn bounded_queue_answers_busy_and_never_accepts_then_drops() {
        let mut cfg = ServerConfig::new(scratch("busy"));
        cfg.queue_capacity = 2;
        let server = ExperimentServer::open(cfg).unwrap();
        // No workers running: admissions stay open.
        assert!(matches!(
            server.submit(spec("gzip", 1)),
            SubmitOutcome::Accepted { deduped: false, .. }
        ));
        assert!(matches!(
            server.submit(spec("gzip", 2)),
            SubmitOutcome::Accepted { deduped: false, .. }
        ));
        let busy = server.submit(spec("gzip", 3));
        let SubmitOutcome::Busy { retry_after_ms } = busy else {
            panic!("expected Busy, got {busy:?}");
        };
        assert!(retry_after_ms > 0);
        // The rejected job is unknown — it was never half-accepted.
        assert!(server.status(spec("gzip", 3).id()).is_none());
        // Dedup does not consume capacity and still answers.
        assert!(matches!(
            server.submit(spec("gzip", 1)),
            SubmitOutcome::Accepted { deduped: true, .. }
        ));
        assert_eq!(server.counters.rejected_busy.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn drain_runs_jobs_and_persists_results() {
        let dir = scratch("drain");
        let mut cfg = ServerConfig::new(dir.clone());
        cfg.workers = 2;
        let server = ExperimentServer::open(cfg.clone()).unwrap();
        let a = spec("gzip", 42);
        let b = spec("mcf", 42);
        server.submit(a.clone());
        server.submit(b.clone());
        server.drain();
        for s in [&a, &b] {
            let (state, attempts) = server.status(s.id()).unwrap();
            assert_eq!(state, JobState::Done);
            assert_eq!(attempts, 1);
            let json = server.result(s.id()).unwrap();
            assert!(std::str::from_utf8(&json).unwrap().contains("dcg_saving"));
        }
        drop(server);

        // Reopen: everything terminal, nothing re-queued, results
        // identical.
        let reopened = ExperimentServer::open(cfg).unwrap();
        let before = reopened.result(a.id()).unwrap();
        reopened.drain(); // no open jobs: returns immediately
        assert_eq!(reopened.result(a.id()).unwrap(), before);
        assert_eq!(reopened.status(a.id()).unwrap().0, JobState::Done);
    }

    #[test]
    fn terminal_failure_is_not_retried_and_panic_is_classified() {
        let dir = scratch("terminal");
        let mut cfg = ServerConfig::new(dir);
        cfg.workers = 1;
        cfg.backoff_base = Duration::from_millis(1);
        let server = ExperimentServer::open(cfg).unwrap();
        let bad = spec("no-such-benchmark", 1);
        server.submit(bad.clone());
        server.drain();
        let (state, attempts) = server.status(bad.id()).unwrap();
        assert!(matches!(state, JobState::Failed(_)), "got {state:?}");
        assert_eq!(attempts, 1, "terminal errors are not retried");
        assert!(server.result(bad.id()).is_none());
    }

    #[test]
    fn zero_count_fault_job_quarantine_path_counts_attempts() {
        // A fault campaign with count 0 is terminal on attempt 1; a
        // retryable failure would instead exhaust max_attempts. Use the
        // WAL to verify the FAIL record is terminal.
        let dir = scratch("quarantine");
        let mut cfg = ServerConfig::new(dir.clone());
        cfg.workers = 1;
        cfg.max_attempts = 2;
        let server = ExperimentServer::open(cfg.clone()).unwrap();
        let bad = JobSpec::Faults { seed: 1, count: 0 };
        server.submit(bad.clone());
        server.drain();
        assert!(matches!(
            server.status(bad.id()).unwrap().0,
            JobState::Failed(_)
        ));
        drop(server);
        // Restart must not resurrect the failed job.
        let reopened = ExperimentServer::open(cfg).unwrap();
        assert!(matches!(
            reopened.status(bad.id()).unwrap().0,
            JobState::Failed(_)
        ));
        let inner = reopened.inner.lock().unwrap();
        assert_eq!(inner.open, 0);
    }

    #[test]
    fn restart_requeues_incomplete_jobs_and_resumed_results_match() {
        // Simulate a crash by dropping the server after submit (no
        // workers ran): the WAL has SUBMITs without terminal records.
        let dir = scratch("resume");
        let cfg = ServerConfig::new(dir.clone());
        let server = ExperimentServer::open(cfg.clone()).unwrap();
        let a = spec("gzip", 7);
        server.submit(a.clone());
        drop(server); // "kill": no DONE journaled

        // Reference result from a pristine run elsewhere.
        let ref_dir = scratch("resume-ref");
        let ref_server = ExperimentServer::open(ServerConfig::new(ref_dir)).unwrap();
        ref_server.submit(a.clone());
        ref_server.drain();
        let want = ref_server.result(a.id()).unwrap();

        // Restart re-queues and re-runs to an identical document.
        let resumed = ExperimentServer::open(cfg).unwrap();
        assert_eq!(resumed.status(a.id()).unwrap().0, JobState::Queued);
        resumed.drain();
        assert_eq!(resumed.result(a.id()).unwrap(), want);
    }

    #[test]
    fn orphaned_result_completes_the_commit_without_rerunning() {
        // after-commit crash shape: result file present, DONE record
        // missing. open() must journal DONE and mark the job Done.
        let dir = scratch("orphan");
        let cfg = ServerConfig::new(dir.clone());
        let server = ExperimentServer::open(cfg.clone()).unwrap();
        let a = spec("gzip", 9);
        server.submit(a.clone());
        let path = server.result_path(a.id());
        drop(server);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, b"{\"sentinel\":true}\n").unwrap();

        let reopened = ExperimentServer::open(cfg.clone()).unwrap();
        assert_eq!(reopened.status(a.id()).unwrap().0, JobState::Done);
        // The sentinel bytes survive: the job was NOT re-run.
        assert_eq!(reopened.result(a.id()).unwrap(), b"{\"sentinel\":true}\n");
        drop(reopened);
        // And the completion is durable.
        let again = ExperimentServer::open(cfg).unwrap();
        assert_eq!(again.status(a.id()).unwrap().0, JobState::Done);
    }

    #[test]
    fn health_document_is_structured() {
        let server = ExperimentServer::open(ServerConfig::new(scratch("health"))).unwrap();
        let json = server.health_json();
        for key in [
            "open_jobs",
            "queue_capacity",
            "counters",
            "rejected_busy",
            "cache_health",
            "readonly_skips",
        ] {
            assert!(json.contains(key), "health JSON missing {key}: {json}");
        }
    }
}
