//! The wire protocol between `dcg-server` and its clients.
//!
//! Every message — request or reply — travels as one **frame**:
//!
//! ```text
//! magic  [u8; 4]   b"DCGF"
//! len    u32 LE    payload length, <= MAX_FRAME_LEN
//! payload [len]    tag byte + fixed-width LE fields (see Request/Reply)
//! check  u64 LE    FNV-1a over the payload bytes
//! ```
//!
//! The framing layer is deliberately paranoid: a bad magic, an oversized
//! length, a short read or a checksum mismatch each surface as a distinct
//! [`ProtocolError`] variant — never a panic, never an unbounded
//! allocation, never a hang past the socket's read timeout. The payload
//! codecs are total functions over arbitrary bytes for the same reason
//! (the property suite feeds them garbage).

use std::fmt;
use std::io::{self, Read, Write};

use crate::jobs::JobSpec;

/// Frame magic — first four bytes of every message in either direction.
pub const FRAME_MAGIC: [u8; 4] = *b"DCGF";

/// Upper bound on a frame payload. Large enough for any result document
/// the job bodies produce (suite metrics are ~100 KiB), small enough
/// that a corrupt length field cannot drive an unbounded allocation.
pub const MAX_FRAME_LEN: u32 = 4 << 20;

/// Longest string field accepted inside a payload (names, error
/// messages). Result documents use the byte-field codec bounded by
/// [`MAX_FRAME_LEN`] instead.
const MAX_STR: usize = 4096;

/// FNV-1a over `bytes` — the same checksum the trace store journal uses.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A structured framing/decoding failure. Every malformed input maps to
/// exactly one of these; none of them panic or allocate past the frame
/// bound.
#[derive(Debug)]
pub enum ProtocolError {
    /// The underlying socket read/write failed (including timeouts).
    Io(io::Error),
    /// The frame did not start with [`FRAME_MAGIC`].
    BadMagic([u8; 4]),
    /// The declared payload length exceeds [`MAX_FRAME_LEN`].
    Oversized(u32),
    /// The stream ended before the declared frame was complete.
    Truncated {
        /// Bytes the frame header promised.
        wanted: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The payload checksum did not match.
    Checksum {
        /// Checksum carried by the frame.
        expected: u64,
        /// Checksum of the payload as received.
        actual: u64,
    },
    /// The payload was well-framed but not a valid message.
    Malformed(&'static str),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "protocol i/o error: {e}"),
            ProtocolError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            ProtocolError::Oversized(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME_LEN} bound")
            }
            ProtocolError::Truncated { wanted, got } => {
                write!(f, "truncated frame: wanted {wanted} bytes, got {got}")
            }
            ProtocolError::Checksum { expected, actual } => write!(
                f,
                "frame checksum mismatch: expected {expected:#018x}, got {actual:#018x}"
            ),
            ProtocolError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

/// Write one frame carrying `payload`.
///
/// # Errors
///
/// [`ProtocolError::Oversized`] when the payload exceeds the frame
/// bound, or the underlying I/O error.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ProtocolError> {
    let len = u32::try_from(payload.len()).map_err(|_| ProtocolError::Oversized(u32::MAX))?;
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::Oversized(len));
    }
    let mut frame = Vec::with_capacity(16 + payload.len());
    frame.extend_from_slice(&FRAME_MAGIC);
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(payload);
    frame.extend_from_slice(&fnv1a(payload).to_le_bytes());
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Read one frame, returning its verified payload.
///
/// # Errors
///
/// Any [`ProtocolError`] variant; a short stream surfaces as
/// [`ProtocolError::Truncated`] rather than a raw `UnexpectedEof`.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, ProtocolError> {
    let mut header = [0u8; 8];
    read_exact_or_truncated(r, &mut header, 8)?;
    let magic = [header[0], header[1], header[2], header[3]];
    if magic != FRAME_MAGIC {
        return Err(ProtocolError::BadMagic(magic));
    }
    let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::Oversized(len));
    }
    let body_len = len as usize + 8;
    let mut body = vec![0u8; body_len];
    read_exact_or_truncated(r, &mut body, body_len)?;
    let payload = &body[..len as usize];
    let expected = u64::from_le_bytes(body[len as usize..].try_into().expect("8-byte tail"));
    let actual = fnv1a(payload);
    if expected != actual {
        return Err(ProtocolError::Checksum { expected, actual });
    }
    Ok(payload.to_vec())
}

/// `read_exact` that reports how far it got instead of a bare EOF.
fn read_exact_or_truncated(
    r: &mut impl Read,
    buf: &mut [u8],
    wanted: usize,
) -> Result<(), ProtocolError> {
    let mut got = 0;
    while got < wanted {
        match r.read(&mut buf[got..wanted]) {
            Ok(0) => return Err(ProtocolError::Truncated { wanted, got }),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ProtocolError::Io(e)),
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Payload field codecs (fixed-width little-endian, shared with the job
// WAL). The cursor returns None past the end instead of panicking.
// ---------------------------------------------------------------------------

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

pub(crate) fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

/// Bounds-checked little-endian reader over a payload.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    pub(crate) fn u8(&mut self) -> Option<u8> {
        let b = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        let b = self.buf.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes(b.try_into().ok()?))
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        let b = self.buf.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_le_bytes(b.try_into().ok()?))
    }

    pub(crate) fn str_bounded(&mut self, bound: usize) -> Option<String> {
        let len = self.u32()? as usize;
        if len > bound {
            return None;
        }
        let b = self.buf.get(self.pos..self.pos + len)?;
        self.pos += len;
        String::from_utf8(b.to_vec()).ok()
    }

    pub(crate) fn str(&mut self) -> Option<String> {
        self.str_bounded(MAX_STR)
    }

    pub(crate) fn bytes(&mut self) -> Option<Vec<u8>> {
        let len = self.u32()? as usize;
        if len > MAX_FRAME_LEN as usize {
            return None;
        }
        let b = self.buf.get(self.pos..self.pos + len)?;
        self.pos += len;
        Some(b.to_vec())
    }

    pub(crate) fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

const REQ_PING: u8 = 1;
const REQ_SUBMIT: u8 = 2;
const REQ_STATUS: u8 = 3;
const REQ_RESULT: u8 = 4;
const REQ_HEALTH: u8 = 5;
const REQ_SHUTDOWN: u8 = 6;

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Submit a job; the reply carries the job id and whether it deduped
    /// against an already-known job.
    Submit(JobSpec),
    /// Query the state of a job by id.
    Status(u64),
    /// Fetch the result document of a completed job by id.
    Result(u64),
    /// Fetch the server health document (queue depth, counters, trace
    /// cache health).
    Health,
    /// Stop accepting work, finish running jobs, exit.
    Shutdown,
}

impl Request {
    /// Canonical payload bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Ping => out.push(REQ_PING),
            Request::Submit(spec) => {
                out.push(REQ_SUBMIT);
                put_bytes(&mut out, &spec.encode());
            }
            Request::Status(id) => {
                out.push(REQ_STATUS);
                put_u64(&mut out, *id);
            }
            Request::Result(id) => {
                out.push(REQ_RESULT);
                put_u64(&mut out, *id);
            }
            Request::Health => out.push(REQ_HEALTH),
            Request::Shutdown => out.push(REQ_SHUTDOWN),
        }
        out
    }

    /// Decode a payload.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Malformed`] naming the first field that failed.
    pub fn decode(payload: &[u8]) -> Result<Request, ProtocolError> {
        let mut c = Cursor::new(payload);
        let req = match c.u8().ok_or(ProtocolError::Malformed("empty request"))? {
            REQ_PING => Request::Ping,
            REQ_SUBMIT => {
                let spec = c
                    .bytes()
                    .ok_or(ProtocolError::Malformed("submit spec bytes"))?;
                Request::Submit(
                    JobSpec::decode(&spec).ok_or(ProtocolError::Malformed("submit job spec"))?,
                )
            }
            REQ_STATUS => {
                Request::Status(c.u64().ok_or(ProtocolError::Malformed("status job id"))?)
            }
            REQ_RESULT => {
                Request::Result(c.u64().ok_or(ProtocolError::Malformed("result job id"))?)
            }
            REQ_HEALTH => Request::Health,
            REQ_SHUTDOWN => Request::Shutdown,
            _ => return Err(ProtocolError::Malformed("unknown request tag")),
        };
        if !c.done() {
            return Err(ProtocolError::Malformed("trailing request bytes"));
        }
        Ok(req)
    }
}

// ---------------------------------------------------------------------------
// Replies
// ---------------------------------------------------------------------------

const REP_PONG: u8 = 1;
const REP_SUBMITTED: u8 = 2;
const REP_BUSY: u8 = 3;
const REP_STATUS: u8 = 4;
const REP_RESULT: u8 = 5;
const REP_NOT_READY: u8 = 6;
const REP_HEALTH: u8 = 7;
const REP_ERR: u8 = 8;
const REP_SHUTTING_DOWN: u8 = 9;

/// Error codes carried by [`Reply::Err`].
pub mod err_code {
    /// The request referenced a job the server has never seen.
    pub const UNKNOWN_JOB: u32 = 1;
    /// The job reached a terminal failure (quarantined or rejected).
    pub const JOB_FAILED: u32 = 2;
    /// The request could not be decoded.
    pub const BAD_REQUEST: u32 = 3;
    /// The server could not journal or persist durably.
    pub const STORAGE: u32 = 4;
}

/// Human label for an [`err_code`] value.
#[must_use]
pub fn err_str(code: u32) -> &'static str {
    match code {
        err_code::UNKNOWN_JOB => "unknown job",
        err_code::JOB_FAILED => "job failed",
        err_code::BAD_REQUEST => "bad request",
        err_code::STORAGE => "storage failure",
        _ => "unknown error code",
    }
}

/// A server reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Answer to [`Request::Ping`].
    Pong,
    /// The job was accepted (or already known).
    Submitted {
        /// The job id (digest of the canonical spec encoding).
        id: u64,
        /// True when the spec deduplicated against an existing job.
        deduped: bool,
    },
    /// The bounded queue is full; the job was **not** accepted. Retry
    /// after the hinted delay.
    Busy {
        /// Suggested client back-off before resubmitting, milliseconds.
        retry_after_ms: u64,
    },
    /// Current state of a job.
    Status {
        /// The job id.
        id: u64,
        /// State label (`queued`, `running`, `backoff`, `done`,
        /// `failed`, `quarantined`).
        state: String,
        /// Execution attempts so far.
        attempts: u32,
    },
    /// The result document of a completed job.
    Result {
        /// The job id.
        id: u64,
        /// The JSON document, exactly as persisted on disk.
        json: Vec<u8>,
    },
    /// The job exists but has not completed yet.
    NotReady {
        /// The job id.
        id: u64,
        /// Current state label.
        state: String,
    },
    /// Server health document (JSON).
    Health(String),
    /// A structured failure.
    Err {
        /// One of [`err_code`].
        code: u32,
        /// Human-readable detail.
        message: String,
    },
    /// Acknowledges [`Request::Shutdown`].
    ShuttingDown,
}

impl Reply {
    /// Canonical payload bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Reply::Pong => out.push(REP_PONG),
            Reply::Submitted { id, deduped } => {
                out.push(REP_SUBMITTED);
                put_u64(&mut out, *id);
                out.push(u8::from(*deduped));
            }
            Reply::Busy { retry_after_ms } => {
                out.push(REP_BUSY);
                put_u64(&mut out, *retry_after_ms);
            }
            Reply::Status {
                id,
                state,
                attempts,
            } => {
                out.push(REP_STATUS);
                put_u64(&mut out, *id);
                put_str(&mut out, state);
                put_u32(&mut out, *attempts);
            }
            Reply::Result { id, json } => {
                out.push(REP_RESULT);
                put_u64(&mut out, *id);
                put_bytes(&mut out, json);
            }
            Reply::NotReady { id, state } => {
                out.push(REP_NOT_READY);
                put_u64(&mut out, *id);
                put_str(&mut out, state);
            }
            Reply::Health(json) => {
                out.push(REP_HEALTH);
                put_bytes(&mut out, json.as_bytes());
            }
            Reply::Err { code, message } => {
                out.push(REP_ERR);
                put_u32(&mut out, *code);
                put_str(&mut out, message);
            }
            Reply::ShuttingDown => out.push(REP_SHUTTING_DOWN),
        }
        out
    }

    /// Decode a payload.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Malformed`] naming the first field that failed.
    pub fn decode(payload: &[u8]) -> Result<Reply, ProtocolError> {
        let mut c = Cursor::new(payload);
        let rep = match c.u8().ok_or(ProtocolError::Malformed("empty reply"))? {
            REP_PONG => Reply::Pong,
            REP_SUBMITTED => Reply::Submitted {
                id: c.u64().ok_or(ProtocolError::Malformed("submitted id"))?,
                deduped: c.u8().ok_or(ProtocolError::Malformed("submitted flag"))? != 0,
            },
            REP_BUSY => Reply::Busy {
                retry_after_ms: c.u64().ok_or(ProtocolError::Malformed("busy hint"))?,
            },
            REP_STATUS => Reply::Status {
                id: c.u64().ok_or(ProtocolError::Malformed("status id"))?,
                state: c.str().ok_or(ProtocolError::Malformed("status state"))?,
                attempts: c.u32().ok_or(ProtocolError::Malformed("status attempts"))?,
            },
            REP_RESULT => Reply::Result {
                id: c.u64().ok_or(ProtocolError::Malformed("result id"))?,
                json: c.bytes().ok_or(ProtocolError::Malformed("result body"))?,
            },
            REP_NOT_READY => Reply::NotReady {
                id: c.u64().ok_or(ProtocolError::Malformed("not-ready id"))?,
                state: c.str().ok_or(ProtocolError::Malformed("not-ready state"))?,
            },
            REP_HEALTH => Reply::Health(
                c.bytes()
                    .and_then(|b| String::from_utf8(b).ok())
                    .ok_or(ProtocolError::Malformed("health body"))?,
            ),
            REP_ERR => Reply::Err {
                code: c.u32().ok_or(ProtocolError::Malformed("error code"))?,
                message: c.str().ok_or(ProtocolError::Malformed("error message"))?,
            },
            REP_SHUTTING_DOWN => Reply::ShuttingDown,
            _ => return Err(ProtocolError::Malformed("unknown reply tag")),
        };
        if !c.done() {
            return Err(ProtocolError::Malformed("trailing reply bytes"));
        }
        Ok(rep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_and_reject_corruption() {
        let payload = Request::Status(0xdead_beef).encode();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();

        let got = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(got, payload);

        // Flip one payload byte: checksum mismatch, not a panic.
        let mut bad = buf.clone();
        bad[10] ^= 0x40;
        assert!(matches!(
            read_frame(&mut bad.as_slice()),
            Err(ProtocolError::Checksum { .. })
        ));

        // Truncate: structured truncation error.
        let short = &buf[..buf.len() - 3];
        assert!(matches!(
            read_frame(&mut &short[..]),
            Err(ProtocolError::Truncated { .. })
        ));

        // Bad magic.
        let mut nomagic = buf.clone();
        nomagic[0] = b'X';
        assert!(matches!(
            read_frame(&mut nomagic.as_slice()),
            Err(ProtocolError::BadMagic(_))
        ));

        // Oversized length never allocates: the header alone rejects it.
        let mut huge = Vec::new();
        huge.extend_from_slice(&FRAME_MAGIC);
        huge.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        assert!(matches!(
            read_frame(&mut huge.as_slice()),
            Err(ProtocolError::Oversized(_))
        ));
    }

    #[test]
    fn requests_and_replies_round_trip() {
        let reqs = [
            Request::Ping,
            Request::Submit(JobSpec::Simulate {
                bench: "gzip".into(),
                seed: 42,
                quick: true,
            }),
            Request::Status(7),
            Request::Result(9),
            Request::Health,
            Request::Shutdown,
        ];
        for r in reqs {
            assert_eq!(Request::decode(&r.encode()).unwrap(), r);
        }
        let reps = [
            Reply::Pong,
            Reply::Submitted {
                id: 3,
                deduped: true,
            },
            Reply::Busy { retry_after_ms: 50 },
            Reply::Status {
                id: 3,
                state: "running".into(),
                attempts: 2,
            },
            Reply::Result {
                id: 3,
                json: b"{}".to_vec(),
            },
            Reply::NotReady {
                id: 3,
                state: "queued".into(),
            },
            Reply::Health("{}".into()),
            Reply::Err {
                code: err_code::UNKNOWN_JOB,
                message: "no such job".into(),
            },
            Reply::ShuttingDown,
        ];
        for r in reps {
            assert_eq!(Reply::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut p = Request::Ping.encode();
        p.push(0);
        assert!(matches!(
            Request::decode(&p),
            Err(ProtocolError::Malformed(_))
        ));
    }
}
