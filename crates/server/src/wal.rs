//! The server's write-ahead log of job transitions (`JOBS.dcgwal`).
//!
//! Same durability discipline as the trace store journal: an 8-byte
//! magic header followed by checksummed records, appended with
//! `sync_data` before the transition takes effect, decoded on open with
//! **torn-tail discard** — the first record that fails its length or
//! checksum ends the replay, and the file is truncated back to the last
//! valid prefix so later appends extend a clean log. A `kill -9` at any
//! byte therefore loses at most the record being written, never the
//! log's integrity.
//!
//! Record framing (little-endian):
//!
//! ```text
//! kind   u8      SUBMIT | START | DONE | FAIL
//! len    u32     body length
//! body   [len]
//! check  u64     FNV-1a over the preceding 5 + len bytes
//! ```

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::jobs::JobSpec;
use crate::protocol::{fnv1a, put_bytes, put_str, put_u32, put_u64, Cursor};

/// File name of the job WAL inside the server state directory.
pub const JOBS_WAL_FILE: &str = "JOBS.dcgwal";

/// Magic header of the job WAL.
pub const JOBS_WAL_MAGIC: &[u8; 8] = b"DCGJWL01";

/// Bound on one WAL record body (a spec plus a message; far below this).
const MAX_RECORD: u32 = 1 << 20;

const REC_SUBMIT: u8 = 1;
const REC_START: u8 = 2;
const REC_DONE: u8 = 3;
const REC_FAIL: u8 = 4;

/// One journaled job transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A job was accepted into the queue.
    Submit {
        /// The job id.
        id: u64,
        /// The full spec, so restart can re-run the job.
        spec: JobSpec,
    },
    /// An execution attempt started.
    Start {
        /// The job id.
        id: u64,
        /// 1-based attempt number.
        attempt: u32,
    },
    /// The job committed its result document (the result file rename
    /// happened strictly before this record).
    Done {
        /// The job id.
        id: u64,
    },
    /// An attempt failed.
    Fail {
        /// The job id.
        id: u64,
        /// The attempt that failed.
        attempt: u32,
        /// True when the failure is final (terminal error or attempt
        /// budget exhausted → quarantine); false schedules a retry.
        terminal: bool,
        /// Failure detail.
        message: String,
    },
}

impl WalRecord {
    fn encode(&self) -> Vec<u8> {
        let (kind, body) = match self {
            WalRecord::Submit { id, spec } => {
                let mut b = Vec::new();
                put_u64(&mut b, *id);
                put_bytes(&mut b, &spec.encode());
                (REC_SUBMIT, b)
            }
            WalRecord::Start { id, attempt } => {
                let mut b = Vec::new();
                put_u64(&mut b, *id);
                put_u32(&mut b, *attempt);
                (REC_START, b)
            }
            WalRecord::Done { id } => {
                let mut b = Vec::new();
                put_u64(&mut b, *id);
                (REC_DONE, b)
            }
            WalRecord::Fail {
                id,
                attempt,
                terminal,
                message,
            } => {
                let mut b = Vec::new();
                put_u64(&mut b, *id);
                put_u32(&mut b, *attempt);
                b.push(u8::from(*terminal));
                put_str(&mut b, message);
                (REC_FAIL, b)
            }
        };
        let mut rec = Vec::with_capacity(13 + body.len());
        rec.push(kind);
        put_u32(&mut rec, body.len() as u32);
        rec.extend_from_slice(&body);
        let check = fnv1a(&rec);
        put_u64(&mut rec, check);
        rec
    }

    fn decode_body(kind: u8, body: &[u8]) -> Option<WalRecord> {
        let mut c = Cursor::new(body);
        let rec = match kind {
            REC_SUBMIT => {
                let id = c.u64()?;
                let spec_bytes = c.bytes()?;
                WalRecord::Submit {
                    id,
                    spec: JobSpec::decode(&spec_bytes)?,
                }
            }
            REC_START => WalRecord::Start {
                id: c.u64()?,
                attempt: c.u32()?,
            },
            REC_DONE => WalRecord::Done { id: c.u64()? },
            REC_FAIL => WalRecord::Fail {
                id: c.u64()?,
                attempt: c.u32()?,
                terminal: c.u8()? != 0,
                message: c.str()?,
            },
            _ => return None,
        };
        if !c.done() {
            return None;
        }
        Some(rec)
    }
}

/// Decode a WAL byte image (past the magic header), stopping at the
/// first torn or corrupt record. Returns the records plus the byte
/// length of the valid prefix (magic included), so callers can truncate
/// the tail away.
pub fn decode_wal(bytes: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    if bytes.len() < JOBS_WAL_MAGIC.len() || &bytes[..JOBS_WAL_MAGIC.len()] != JOBS_WAL_MAGIC {
        return (records, 0);
    }
    let mut pos = JOBS_WAL_MAGIC.len();
    while let Some(header) = bytes.get(pos..pos + 5) {
        let kind = header[0];
        let len = u32::from_le_bytes(header[1..5].try_into().expect("4 bytes"));
        if len > MAX_RECORD {
            break;
        }
        let total = 5 + len as usize + 8;
        let Some(rec) = bytes.get(pos..pos + total) else {
            break;
        };
        let check = u64::from_le_bytes(rec[total - 8..].try_into().expect("8 bytes"));
        if check != fnv1a(&rec[..total - 8]) {
            break;
        }
        let Some(decoded) = WalRecord::decode_body(kind, &rec[5..total - 8]) else {
            break;
        };
        records.push(decoded);
        pos += total;
    }
    (records, pos)
}

/// The open, append-only job WAL.
#[derive(Debug)]
pub struct JobWal {
    file: Mutex<File>,
    path: PathBuf,
}

impl JobWal {
    /// Open (or create) the WAL in `state_dir`, replaying survivors.
    ///
    /// A torn tail is discarded *and truncated off the file*, so the
    /// next append continues a clean log. A file with an unrecognized
    /// magic is reset to an empty log (fail-open, mirroring the trace
    /// store's handling of foreign journals).
    ///
    /// # Errors
    ///
    /// Only on unrecoverable I/O (the state directory itself being
    /// unusable).
    pub fn open(state_dir: &Path) -> io::Result<(JobWal, Vec<WalRecord>)> {
        let path = state_dir.join(JOBS_WAL_FILE);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let (records, valid_len) = if bytes.is_empty() {
            file.write_all(JOBS_WAL_MAGIC)?;
            file.sync_data()?;
            (Vec::new(), JOBS_WAL_MAGIC.len())
        } else {
            let (records, valid_len) = decode_wal(&bytes);
            if valid_len == 0 {
                // Foreign or pre-magic file: reset to an empty log.
                file.set_len(0)?;
                file.seek(SeekFrom::Start(0))?;
                file.write_all(JOBS_WAL_MAGIC)?;
                file.sync_data()?;
                (Vec::new(), JOBS_WAL_MAGIC.len())
            } else {
                if valid_len < bytes.len() {
                    file.set_len(valid_len as u64)?;
                    file.sync_data()?;
                }
                (records, valid_len)
            }
        };
        file.seek(SeekFrom::Start(valid_len as u64))?;
        Ok((
            JobWal {
                file: Mutex::new(file),
                path,
            },
            records,
        ))
    }

    /// Durably append one record (`write` + `sync_data` before return).
    ///
    /// # Errors
    ///
    /// The underlying I/O error; the caller must treat the transition as
    /// not having happened.
    pub fn append(&self, record: &WalRecord) -> io::Result<()> {
        let bytes = record.encode();
        let mut file = self.file.lock().expect("job WAL lock");
        file.write_all(&bytes)?;
        file.sync_data()?;
        Ok(())
    }

    /// Path of the WAL file.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/tmp")
            .join(format!("server-wal-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_records() -> Vec<WalRecord> {
        let spec = JobSpec::Simulate {
            bench: "gzip".into(),
            seed: 42,
            quick: true,
        };
        vec![
            WalRecord::Submit {
                id: spec.id(),
                spec,
            },
            WalRecord::Start { id: 11, attempt: 1 },
            WalRecord::Fail {
                id: 11,
                attempt: 1,
                terminal: false,
                message: "deadline exceeded".into(),
            },
            WalRecord::Start { id: 11, attempt: 2 },
            WalRecord::Done { id: 11 },
        ]
    }

    #[test]
    fn append_then_reopen_replays_everything() {
        let dir = scratch("roundtrip");
        let (wal, recovered) = JobWal::open(&dir).unwrap();
        assert!(recovered.is_empty());
        let records = sample_records();
        for r in &records {
            wal.append(r).unwrap();
        }
        drop(wal);
        let (_, recovered) = JobWal::open(&dir).unwrap();
        assert_eq!(recovered, records);
    }

    #[test]
    fn torn_tail_is_discarded_and_truncated() {
        let dir = scratch("torn");
        let (wal, _) = JobWal::open(&dir).unwrap();
        let records = sample_records();
        for r in &records {
            wal.append(r).unwrap();
        }
        let path = wal.path().to_path_buf();
        drop(wal);

        // Tear off the last 3 bytes of the final record.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

        let (wal, recovered) = JobWal::open(&dir).unwrap();
        assert_eq!(recovered, records[..records.len() - 1]);
        // The torn bytes were truncated away: a fresh append extends a
        // clean log.
        wal.append(&WalRecord::Done { id: 99 }).unwrap();
        drop(wal);
        let (_, recovered) = JobWal::open(&dir).unwrap();
        assert_eq!(recovered.len(), records.len());
        assert_eq!(*recovered.last().unwrap(), WalRecord::Done { id: 99 });
    }

    #[test]
    fn foreign_magic_resets_to_an_empty_log() {
        let dir = scratch("foreign");
        std::fs::write(dir.join(JOBS_WAL_FILE), b"NOTAWALFILE").unwrap();
        let (wal, recovered) = JobWal::open(&dir).unwrap();
        assert!(recovered.is_empty());
        wal.append(&WalRecord::Done { id: 1 }).unwrap();
        drop(wal);
        let (_, recovered) = JobWal::open(&dir).unwrap();
        assert_eq!(recovered, vec![WalRecord::Done { id: 1 }]);
    }
}
