//! Job specifications and their execution bodies.
//!
//! A [`JobSpec`] is the unit of work a client submits: a fully
//! deterministic description (benchmark, seed, scale) whose canonical
//! encoding doubles as the job identity — two clients submitting the
//! same spec share one execution and one result document. Every body is
//! a pure function of its spec (seeded workloads, fixed configurations),
//! which is what makes crash-resume byte-identical: re-running an
//! interrupted job after `kill -9` produces exactly the bytes the
//! uninterrupted run would have written.

use std::path::Path;

use dcg_core::{run_passive, Dcg, NoGating, RunLength, TraceCache};
use dcg_experiments::{fault_campaign_json, suite_metrics_json, ExperimentConfig, FaultCampaign};
use dcg_sim::{LatchGroups, SimConfig};
use dcg_testkit::json::Json;
use dcg_workloads::{Spec2000, SyntheticWorkload};

use crate::protocol::{fnv1a, put_str, put_u32, put_u64, Cursor};

const SPEC_SIMULATE: u8 = 1;
const SPEC_REPLAY: u8 = 2;
const SPEC_METRICS: u8 = 3;
const SPEC_FAULTS: u8 = 4;

/// Deadline class of a job — drives the per-class execution timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobClass {
    /// Single-benchmark jobs (simulate, replay).
    Single,
    /// Whole-suite or campaign jobs (metrics, faults).
    Heavy,
}

/// A deterministic unit of work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobSpec {
    /// Simulate one benchmark live (no cache): ungated baseline vs DCG.
    Simulate {
        /// SPEC2000 benchmark name (e.g. `"gzip"`).
        bench: String,
        /// Workload seed.
        seed: u64,
        /// Quick run length instead of standard.
        quick: bool,
    },
    /// Same measurement through the trace store: records on the first
    /// run, replays bit-identically (and much faster) on later runs.
    Replay {
        /// SPEC2000 benchmark name.
        bench: String,
        /// Workload seed.
        seed: u64,
        /// Quick run length instead of standard.
        quick: bool,
    },
    /// Run the experiment suite and produce the cycle-level metrics
    /// document.
    Metrics {
        /// Suite seed.
        seed: u64,
        /// Quick (3-benchmark) suite instead of the full 18.
        quick: bool,
    },
    /// Run the seeded fault-injection campaign.
    Faults {
        /// Campaign seed.
        seed: u64,
        /// Number of faults to inject.
        count: u32,
    },
}

impl JobSpec {
    /// Canonical encoding — the digest of these bytes is the job id.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            JobSpec::Simulate { bench, seed, quick } => {
                out.push(SPEC_SIMULATE);
                put_str(&mut out, bench);
                put_u64(&mut out, *seed);
                out.push(u8::from(*quick));
            }
            JobSpec::Replay { bench, seed, quick } => {
                out.push(SPEC_REPLAY);
                put_str(&mut out, bench);
                put_u64(&mut out, *seed);
                out.push(u8::from(*quick));
            }
            JobSpec::Metrics { seed, quick } => {
                out.push(SPEC_METRICS);
                put_u64(&mut out, *seed);
                out.push(u8::from(*quick));
            }
            JobSpec::Faults { seed, count } => {
                out.push(SPEC_FAULTS);
                put_u64(&mut out, *seed);
                put_u32(&mut out, *count);
            }
        }
        out
    }

    /// Decode a canonical encoding; `None` on any malformation.
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<JobSpec> {
        let mut c = Cursor::new(bytes);
        let spec = match c.u8()? {
            SPEC_SIMULATE => JobSpec::Simulate {
                bench: c.str()?,
                seed: c.u64()?,
                quick: c.u8()? != 0,
            },
            SPEC_REPLAY => JobSpec::Replay {
                bench: c.str()?,
                seed: c.u64()?,
                quick: c.u8()? != 0,
            },
            SPEC_METRICS => JobSpec::Metrics {
                seed: c.u64()?,
                quick: c.u8()? != 0,
            },
            SPEC_FAULTS => JobSpec::Faults {
                seed: c.u64()?,
                count: c.u32()?,
            },
            _ => return None,
        };
        if !c.done() {
            return None;
        }
        Some(spec)
    }

    /// The job id: FNV-1a digest of the canonical encoding. Identical
    /// specs — from any client, in any session — share one id, which is
    /// what job-level deduplication keys on.
    #[must_use]
    pub fn id(&self) -> u64 {
        fnv1a(&self.encode())
    }

    /// Deadline class.
    #[must_use]
    pub fn class(&self) -> JobClass {
        match self {
            JobSpec::Simulate { .. } | JobSpec::Replay { .. } => JobClass::Single,
            JobSpec::Metrics { .. } | JobSpec::Faults { .. } => JobClass::Heavy,
        }
    }

    /// Short human-readable label for logs.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            JobSpec::Simulate { bench, seed, .. } => format!("simulate:{bench}:{seed}"),
            JobSpec::Replay { bench, seed, .. } => format!("replay:{bench}:{seed}"),
            JobSpec::Metrics { seed, .. } => format!("metrics:{seed}"),
            JobSpec::Faults { seed, count } => format!("faults:{count}:{seed}"),
        }
    }
}

/// A failed job body: the message plus whether retrying can help.
/// Unknown benchmarks are terminal; infrastructure hiccups (store
/// metadata, replay corruption — both self-healing) are retryable.
#[derive(Debug)]
pub struct JobError {
    /// What went wrong.
    pub message: String,
    /// Whether a retry has any chance of succeeding.
    pub retryable: bool,
}

impl JobError {
    fn terminal(message: String) -> JobError {
        JobError {
            message,
            retryable: false,
        }
    }

    fn retryable(message: String) -> JobError {
        JobError {
            message,
            retryable: true,
        }
    }
}

/// Execute a job body, returning the result JSON document (the exact
/// bytes persisted and served to clients, newline-terminated).
///
/// `state_dir` is the server's state directory; replay jobs root their
/// trace store under `<state_dir>/traces`.
///
/// # Errors
///
/// [`JobError`] with the retryable flag classified per failure cause.
pub fn run_job(spec: &JobSpec, state_dir: &Path) -> Result<String, JobError> {
    match spec {
        JobSpec::Simulate { bench, seed, quick } => {
            let (cfg, groups, profile, length) = single_setup(bench, *quick)?;
            let mut baseline = NoGating::new(&cfg, &groups);
            let mut dcg = Dcg::new(&cfg, &groups);
            let stream = SyntheticWorkload::new(profile, *seed);
            let run = run_passive(&cfg, stream, length, &mut [&mut baseline, &mut dcg]);
            Ok(single_doc("simulate", bench, *seed, &run))
        }
        JobSpec::Replay { bench, seed, quick } => {
            let (cfg, groups, profile, length) = single_setup(bench, *quick)?;
            let cache = TraceCache::new(state_dir.join("traces"));
            let mut baseline = NoGating::new(&cfg, &groups);
            let mut dcg = Dcg::new(&cfg, &groups);
            let run = cache
                .run_passive_cached(&cfg, profile, *seed, length, &mut [&mut baseline, &mut dcg])
                .map_err(|e| JobError::retryable(format!("cached run failed: {e}")))?;
            Ok(single_doc("replay", bench, *seed, &run))
        }
        JobSpec::Metrics { seed, quick } => {
            let mut cfg = if *quick {
                ExperimentConfig::quick()
            } else {
                ExperimentConfig::standard()
            };
            cfg.seed = *seed;
            let suite = dcg_experiments::Suite::run(&cfg, false);
            if !suite.failures.is_empty() {
                let names: Vec<&str> = suite.failures.iter().map(|f| f.name.as_str()).collect();
                return Err(JobError::retryable(format!(
                    "suite lost benchmarks to panics: {}",
                    names.join(", ")
                )));
            }
            Ok(format!("{}\n", suite_metrics_json(&suite)))
        }
        JobSpec::Faults { seed, count } => {
            if *count == 0 {
                return Err(JobError::terminal("fault campaign of 0 faults".into()));
            }
            let campaign = FaultCampaign::run(*seed, *count);
            if !campaign.all_classified() {
                return Err(JobError::terminal(
                    "fault campaign left undetected faults — safety net failed".into(),
                ));
            }
            Ok(format!("{}\n", fault_campaign_json(&campaign)))
        }
    }
}

/// Shared setup for the single-benchmark bodies.
fn single_setup(
    bench: &str,
    quick: bool,
) -> Result<
    (
        SimConfig,
        LatchGroups,
        dcg_workloads::BenchmarkProfile,
        RunLength,
    ),
    JobError,
> {
    let profile = Spec2000::by_name(bench)
        .ok_or_else(|| JobError::terminal(format!("unknown benchmark '{bench}'")))?;
    let cfg = SimConfig::baseline_8wide();
    let groups = LatchGroups::new(&cfg.depth);
    let length = if quick {
        RunLength::quick()
    } else {
        RunLength::standard()
    };
    Ok((cfg, groups, profile, length))
}

/// The result document of a single-benchmark job. Every field is a
/// deterministic function of the spec (no wall-clock anywhere), so a
/// resumed run serializes to identical bytes.
fn single_doc(kind: &str, bench: &str, seed: u64, run: &dcg_core::PassiveRun) -> String {
    let base = &run.outcomes[0];
    let dcg = &run.outcomes[1];
    let doc = Json::obj([
        ("job", Json::str(kind)),
        ("bench", Json::str(bench)),
        ("seed", Json::u64(seed)),
        ("cycles", Json::u64(run.stats.cycles)),
        ("committed", Json::u64(run.stats.committed)),
        ("ipc", Json::f64(run.stats.ipc())),
        (
            "dcg_saving",
            Json::f64(dcg.report.power_saving_vs(&base.report)),
        ),
        ("violations", Json::u64(dcg.audit.violations)),
        ("hazards_detected", Json::u64(dcg.safety.total_detected())),
    ]);
    format!("{doc}\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_encoding_round_trips_and_ids_are_stable() {
        let specs = [
            JobSpec::Simulate {
                bench: "gzip".into(),
                seed: 42,
                quick: true,
            },
            JobSpec::Replay {
                bench: "mcf".into(),
                seed: 7,
                quick: false,
            },
            JobSpec::Metrics {
                seed: 42,
                quick: true,
            },
            JobSpec::Faults { seed: 1, count: 9 },
        ];
        for s in &specs {
            assert_eq!(JobSpec::decode(&s.encode()).as_ref(), Some(s));
            assert_eq!(s.id(), s.clone().id(), "id is a pure function");
        }
        // Distinct specs get distinct ids (simulate vs replay of the
        // same benchmark must not dedup into each other).
        let ids: Vec<u64> = specs.iter().map(JobSpec::id).collect();
        let mut unique = ids.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), ids.len());
    }

    #[test]
    fn unknown_benchmark_is_a_terminal_error() {
        let spec = JobSpec::Simulate {
            bench: "no-such-benchmark".into(),
            seed: 1,
            quick: true,
        };
        let err = run_job(&spec, Path::new("/nonexistent")).unwrap_err();
        assert!(!err.retryable);
        assert!(err.message.contains("no-such-benchmark"));
    }

    #[test]
    fn simulate_and_replay_agree_and_are_deterministic() {
        let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/tmp/server-jobs-replay");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let sim = JobSpec::Simulate {
            bench: "gzip".into(),
            seed: 42,
            quick: true,
        };
        let rep = JobSpec::Replay {
            bench: "gzip".into(),
            seed: 42,
            quick: true,
        };
        let live = run_job(&sim, &dir).unwrap();
        let cold = run_job(&rep, &dir).unwrap(); // records
        let warm = run_job(&rep, &dir).unwrap(); // replays
        assert_eq!(cold, warm, "warm replay reproduces the cold run");
        // The two kinds only differ in the "job" field.
        assert_eq!(
            live.replace("\"job\":\"simulate\"", "\"job\":\"replay\""),
            cold,
            "replay measures exactly what the live run measures"
        );
        assert_eq!(live, run_job(&sim, &dir).unwrap(), "simulate is pure");
    }
}
