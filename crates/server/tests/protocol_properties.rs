//! Property suite for the wire protocol: the framing layer and the
//! request/reply codecs must be total over arbitrary bytes — corrupt,
//! truncated and oversized frames are rejected with structured errors,
//! never a panic, never an unbounded allocation, and (because all
//! parsing is over in-memory buffers with strict bounds) never a hang.

use dcg_server::{read_frame, write_frame, JobSpec, ProtocolError, Reply, Request, MAX_FRAME_LEN};
use dcg_testkit::prop;

/// Generator of arbitrary byte vectors (length 0..=600).
fn bytes(max_len: usize) -> prop::Gen<Vec<u8>> {
    prop::vec(prop::range(0u64..256), 0usize..max_len).map(|v| v.iter().map(|&b| b as u8).collect())
}

/// Generator of structurally valid requests.
fn requests() -> prop::Gen<Request> {
    let bench =
        prop::range(0u64..4).map(|i| ["gzip", "mcf", "swim", "art"][i as usize].to_string());
    let spec = prop::tuple((
        prop::range(0u64..4),
        bench,
        prop::any_u64(),
        prop::range(0u64..2),
    ))
    .map(|(kind, bench, seed, q)| match kind {
        0 => JobSpec::Simulate {
            bench,
            seed,
            quick: q == 1,
        },
        1 => JobSpec::Replay {
            bench,
            seed,
            quick: q == 1,
        },
        2 => JobSpec::Metrics {
            seed,
            quick: q == 1,
        },
        _ => JobSpec::Faults {
            seed,
            count: (seed % 64) as u32 + 1,
        },
    });
    prop::tuple((prop::range(0u64..6), spec, prop::any_u64())).map(|(tag, spec, id)| match tag {
        0 => Request::Ping,
        1 => Request::Submit(spec),
        2 => Request::Status(id),
        3 => Request::Result(id),
        4 => Request::Health,
        _ => Request::Shutdown,
    })
}

#[test]
fn decoding_arbitrary_bytes_never_panics() {
    prop::check("protocol_total_decode", bytes(600), |raw| {
        // Framing layer: any outcome is fine, panicking is not.
        let _ = read_frame(&mut raw.as_slice());
        // Payload codecs are equally total.
        let _ = Request::decode(&raw);
        let _ = Reply::decode(&raw);
        let _ = JobSpec::decode(&raw);
    });
}

#[test]
fn any_single_corruption_of_a_valid_frame_is_rejected() {
    let gen = prop::tuple((bytes(200), prop::any_u64(), prop::range(0u64..2)));
    prop::check(
        "protocol_corruption_rejected",
        gen,
        |(payload, pick, mode)| {
            let mut frame = Vec::new();
            write_frame(&mut frame, &payload).expect("bounded payload frames");
            assert_eq!(
                read_frame(&mut frame.as_slice()).expect("clean frame decodes"),
                payload
            );
            if mode == 0 {
                // Truncate at an arbitrary boundary short of the full frame.
                let cut = (pick % frame.len() as u64) as usize;
                let err = read_frame(&mut &frame[..cut]).expect_err("truncation must be rejected");
                assert!(
                    matches!(
                        err,
                        ProtocolError::Truncated { .. }
                            | ProtocolError::BadMagic(_)
                            | ProtocolError::Oversized(_)
                    ),
                    "unexpected truncation classification: {err}"
                );
            } else {
                // Flip one bit anywhere in the frame.
                let pos = (pick % frame.len() as u64) as usize;
                let bit = 1u8 << (pick % 8);
                frame[pos] ^= bit;
                read_frame(&mut frame.as_slice()).expect_err("bit flip must be rejected");
            }
        },
    );
}

#[test]
fn request_round_trip_through_the_full_stack() {
    prop::check("protocol_request_roundtrip", requests(), |req| {
        let mut frame = Vec::new();
        write_frame(&mut frame, &req.encode()).unwrap();
        let payload = read_frame(&mut frame.as_slice()).unwrap();
        assert_eq!(Request::decode(&payload).unwrap(), req);
    });
}

#[test]
fn oversized_frames_are_rejected_from_the_header_alone() {
    // The reader must reject the declared length before allocating or
    // reading the body.
    let mut header = Vec::new();
    header.extend_from_slice(b"DCGF");
    header.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
    // No body at all: if the length check came after the read, this
    // would report Truncated; it must report Oversized.
    assert!(matches!(
        read_frame(&mut header.as_slice()),
        Err(ProtocolError::Oversized(_))
    ));
}
