//! Property suite for the job WAL: a log truncated at **every byte
//! boundary** (the `kill -9` state space) always recovers a clean
//! prefix of the journaled transitions, recovery is idempotent, and a
//! recovered log accepts further appends. Random single-bit corruption
//! gets the same guarantee: the decoded records are always an exact
//! prefix of what was written.

use std::path::PathBuf;

use dcg_server::{decode_wal, JobSpec, JobWal, WalRecord, JOBS_WAL_FILE, JOBS_WAL_MAGIC};
use dcg_testkit::prop;

fn scratch(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("wal-props-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Generator of plausible record sequences (0..12 records mixing all
/// four kinds, with ids drawn from a small pool so sequences contain
/// realistic per-job progressions).
fn records() -> prop::Gen<Vec<WalRecord>> {
    let record = prop::tuple((
        prop::range(0u64..4),
        prop::range(0u64..4),
        prop::any_u64(),
        prop::range(0u64..2),
    ))
    .map(|(kind, id_pick, seed, flag)| {
        let id = 0xab1e0 + id_pick; // small id pool
        match kind {
            0 => WalRecord::Submit {
                id,
                spec: JobSpec::Simulate {
                    bench: "gzip".into(),
                    seed,
                    quick: flag == 1,
                },
            },
            1 => WalRecord::Start {
                id,
                attempt: (seed % 5) as u32 + 1,
            },
            2 => WalRecord::Done { id },
            _ => WalRecord::Fail {
                id,
                attempt: (seed % 5) as u32 + 1,
                terminal: flag == 1,
                message: format!("failure {seed:#x}"),
            },
        }
    });
    prop::vec(record, 0usize..12)
}

/// Write `records` through a fresh [`JobWal`] and return the WAL file's
/// byte image.
fn wal_bytes(dir: &std::path::Path, records: &[WalRecord]) -> Vec<u8> {
    let (wal, recovered) = JobWal::open(dir).unwrap();
    assert!(recovered.is_empty());
    for r in records {
        wal.append(r).unwrap();
    }
    drop(wal);
    std::fs::read(dir.join(JOBS_WAL_FILE)).unwrap()
}

#[test]
fn truncation_at_every_byte_boundary_recovers_a_clean_prefix() {
    prop::check("wal_truncate_every_boundary", records(), |records| {
        let dir = scratch("trunc");
        let bytes = wal_bytes(&dir, &records);
        let path = dir.join(JOBS_WAL_FILE);

        // The pure decoder visits literally every boundary (cheap, in
        // memory); the full open/append path — which syncs to disk —
        // samples a stride of boundaries plus the endpoints.
        let stride = (bytes.len() / 16).max(1);
        for cut in 0..=bytes.len() {
            let (decoded, valid_len) = decode_wal(&bytes[..cut]);
            assert!(valid_len <= cut);
            assert_eq!(
                decoded,
                records[..decoded.len()],
                "decoded records must be an exact prefix (cut at {cut})"
            );

            if cut % stride != 0 && cut != bytes.len() {
                continue;
            }
            // Full open path: recovery is idempotent and the log stays
            // appendable.
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let (wal, first) = JobWal::open(&dir).unwrap();
            assert_eq!(first, decoded, "open agrees with the pure decoder");
            drop(wal);
            let (wal, second) = JobWal::open(&dir).unwrap();
            assert_eq!(second, first, "recovery is idempotent");
            wal.append(&WalRecord::Done { id: 0xfeed }).unwrap();
            drop(wal);
            let (_, third) = JobWal::open(&dir).unwrap();
            assert_eq!(third.len(), first.len() + 1);
            assert_eq!(*third.last().unwrap(), WalRecord::Done { id: 0xfeed });
        }
    });
}

#[test]
fn single_bit_corruption_still_yields_a_prefix() {
    let gen = prop::tuple((records(), prop::any_u64()));
    prop::check("wal_bitflip_prefix", gen, |(records, pick)| {
        let dir = scratch("flip");
        let mut bytes = wal_bytes(&dir, &records);
        if bytes.len() <= JOBS_WAL_MAGIC.len() {
            return; // nothing past the magic to corrupt
        }
        let pos =
            JOBS_WAL_MAGIC.len() + (pick % (bytes.len() - JOBS_WAL_MAGIC.len()) as u64) as usize;
        bytes[pos] ^= 1 << (pick % 8);
        let (decoded, _) = decode_wal(&bytes);
        // A flipped record (or anything after it) is discarded; records
        // before the damage survive exactly.
        assert_eq!(decoded, records[..decoded.len()]);
    });
}
