//! End-to-end crash-resume integration: a server killed (deterministic
//! `abort()`) mid-campaign and restarted in drain mode must finish the
//! backlog and produce **byte-identical** result documents to a server
//! that never crashed.
//!
//! Three subprocess runs of the real `dcg-server` binary:
//!
//! 1. **Reference** — serve on a socket, submit a small campaign through
//!    [`DcgClient`], wait for every result, shut down cleanly.
//! 2. **Crashed** — same campaign submitted under
//!    `DCG_SERVER_CRASH=before-commit:2`: the process aborts right
//!    before committing its second result. The exit status must be
//!    abnormal.
//! 3. **Resumed** — reopen the crashed state dir with `--drain` (no
//!    crash plan): the WAL re-queues every incomplete job and the drain
//!    runs them to completion.
//!
//! Every `jobs/job-*.json` in the resumed dir is then compared
//! byte-for-byte against the reference dir.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use dcg_server::{DcgClient, JobSpec, JOBS_DIR};

const SERVER_BIN: &str = env!("CARGO_BIN_EXE_dcg-server");

fn scratch(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("crash-resume-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The campaign: three deterministic quick jobs across two job kinds.
fn campaign() -> Vec<JobSpec> {
    vec![
        JobSpec::Simulate {
            bench: "gzip".into(),
            seed: 7,
            quick: true,
        },
        JobSpec::Simulate {
            bench: "mcf".into(),
            seed: 11,
            quick: true,
        },
        JobSpec::Faults { seed: 5, count: 9 },
    ]
}

fn wait_for_socket(sock: &Path, child: &mut Child) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while !sock.exists() {
        if let Some(status) = child.try_wait().unwrap() {
            panic!("server exited before creating socket: {status}");
        }
        assert!(Instant::now() < deadline, "server never created its socket");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn read_results(state: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    let jobs = state.join(JOBS_DIR);
    for entry in std::fs::read_dir(&jobs).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("job-") && name.ends_with(".json") {
            out.insert(name, std::fs::read(entry.path()).unwrap());
        }
    }
    out
}

/// Run a serving instance, submit the campaign, wait for all results,
/// shut it down, and return the committed result documents.
fn reference_run(state: &Path) -> BTreeMap<String, Vec<u8>> {
    let sock = state.join("dcg.sock");
    let mut child = Command::new(SERVER_BIN)
        .args(["--state", state.to_str().unwrap()])
        .args(["--socket", sock.to_str().unwrap()])
        .args(["--workers", "2"])
        .env_remove("DCG_SERVER_CRASH")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn dcg-server");
    wait_for_socket(&sock, &mut child);

    let client = DcgClient::new(&sock);
    for spec in campaign() {
        client
            .submit_and_wait(&spec, Duration::from_millis(50), Duration::from_secs(300))
            .expect("job completes");
    }
    client.shutdown().expect("clean shutdown accepted");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Some(status) = child.try_wait().unwrap() {
            assert!(status.success(), "clean shutdown exits zero: {status}");
            break;
        }
        assert!(Instant::now() < deadline, "server ignored shutdown");
        std::thread::sleep(Duration::from_millis(20));
    }
    read_results(state)
}

#[test]
fn kill_mid_campaign_then_drain_reproduces_identical_results() {
    let reference = reference_run(&scratch("ref"));
    assert_eq!(reference.len(), 3, "reference run commits all three jobs");

    // Crashed run: abort deterministically before committing the second
    // result. A single worker keeps the commit order deterministic.
    let state = scratch("crash");
    let sock = state.join("dcg.sock");
    let mut child = Command::new(SERVER_BIN)
        .args(["--state", state.to_str().unwrap()])
        .args(["--socket", sock.to_str().unwrap()])
        .args(["--workers", "1"])
        .env("DCG_SERVER_CRASH", "before-commit:2")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn dcg-server (crash run)");
    wait_for_socket(&sock, &mut child);

    let client = DcgClient::new(&sock);
    for spec in campaign() {
        // Submissions are journaled before acknowledgement; the crash
        // fires from a worker thread, so all three may or may not be
        // acknowledged before the abort — an Io error here is fine.
        let _ = client.submit(&spec, Duration::from_secs(60));
    }
    let status = child.wait().expect("crashed server reaps");
    assert!(
        !status.success(),
        "crash hook must abort the process: {status}"
    );
    assert!(
        read_results(&state).len() < 3,
        "the crash must land before the campaign finished"
    );

    // Resume: drain mode replays the WAL, re-queues incomplete jobs and
    // runs the backlog to completion with no crash plan installed.
    let status = Command::new(SERVER_BIN)
        .args(["--state", state.to_str().unwrap()])
        .args(["--workers", "2", "--drain"])
        .env_remove("DCG_SERVER_CRASH")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("spawn dcg-server --drain");
    assert!(status.success(), "drain run exits cleanly: {status}");

    let resumed = read_results(&state);
    assert_eq!(
        resumed.keys().collect::<Vec<_>>(),
        reference.keys().collect::<Vec<_>>(),
        "resume commits exactly the reference job set"
    );
    for (name, bytes) in &reference {
        assert_eq!(
            &resumed[name], bytes,
            "{name}: resumed result must be byte-identical to the reference"
        );
    }
}
