//! End-to-end tests of the `repro` command-line interface.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn help_prints_usage() {
    let out = repro().arg("--help").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("usage: repro"));
}

#[test]
fn no_arguments_fails_with_usage() {
    let out = repro().output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn unknown_flag_fails() {
    let out = repro().arg("--bogus").output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));
}

#[test]
fn unknown_experiment_fails() {
    let out = repro().args(["--quick", "fig99"]).output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown experiment"));
}

#[test]
fn config_subcommand_prints_table_1() {
    let out = repro().arg("config").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("8-way issue"));
    assert!(text.contains("6 int ALUs"));
    assert!(text.contains("100-cycle latency"));
}

#[test]
fn quick_workload_stats_writes_all_formats() {
    let dir = std::env::temp_dir().join(format!("dcg_cli_test_{}", std::process::id()));
    let out = repro()
        .args(["--quick", "--svg", "--json", "--chart", "--out"])
        .arg(&dir)
        .arg("workload-stats")
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("workload-stats"));
    for ext in ["csv", "svg", "json"] {
        let path = dir.join(format!("workload-stats.{ext}"));
        assert!(path.exists(), "missing {}", path.display());
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn out_flag_requires_a_directory() {
    let out = repro().arg("--out").output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out requires"));
}

#[test]
fn seeds_flag_validates() {
    let out = repro()
        .args(["--seeds", "0", "fig10"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--seeds requires"));

    let out = repro().args(["--seeds"]).output().expect("spawn");
    assert!(!out.status.success());
}

#[test]
fn multi_seed_quick_run_averages() {
    let dir = std::env::temp_dir().join(format!("dcg_cli_seeds_{}", std::process::id()));
    let out = repro()
        .args(["--quick", "--seeds", "2", "--out"])
        .arg(&dir)
        .arg("utilization")
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("averaged over 2 runs"));
    std::fs::remove_dir_all(&dir).ok();
}
