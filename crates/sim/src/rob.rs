//! Reorder buffer: the in-flight instruction window (128 entries in
//! Table 1) and the per-instruction microarchitectural state.

use dcg_isa::{FuClass, Inst};

/// Handle to an in-flight instruction.
///
/// Carries the instruction's dynamic sequence number so stale handles
/// (slots recycled after commit) can be detected: a mismatched handle means
/// the producer already committed, i.e. its value is architecturally ready.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InstId {
    slot: u32,
    seq: u64,
}

impl InstId {
    /// The instruction's global dynamic sequence number (program order).
    pub fn seq(self) -> u64 {
        self.seq
    }
}

/// Microarchitectural state of one in-flight instruction.
#[derive(Debug, Clone)]
pub struct InFlight {
    /// The architectural instruction.
    pub inst: Inst,
    /// Dynamic sequence number (program order).
    pub seq: u64,
    /// The front end predicted this branch wrong; fetch is stalled until it
    /// executes.
    pub mispredicted: bool,
    /// Cycle the instruction was issued (selected), if yet.
    pub issued: Option<u64>,
    /// Earliest cycle a consumer may issue (result forwarding).
    pub result_ready: Option<u64>,
    /// Booked result-bus / writeback cycle (value-producing ops only).
    pub writeback: Option<u64>,
    /// Cycle at which the instruction becomes commit-eligible.
    pub complete_at: Option<u64>,
    /// Execution-unit binding chosen at select time.
    pub fu: Option<(FuClass, usize)>,
    /// Producers of the source operands (in-flight at dispatch time).
    pub producers: [Option<InstId>; 2],
    /// For stores: the scheduled commit-time D-cache access cycle.
    pub store_access: Option<u64>,
}

impl InFlight {
    /// Fresh entry for `inst` with sequence number `seq`.
    pub fn new(inst: Inst, seq: u64) -> InFlight {
        InFlight {
            inst,
            seq,
            mispredicted: false,
            issued: None,
            result_ready: None,
            writeback: None,
            complete_at: None,
            fu: None,
            producers: [None, None],
            store_access: None,
        }
    }

    /// `true` once the instruction may commit at `cycle`.
    pub fn commit_ready(&self, cycle: u64) -> bool {
        matches!(self.complete_at, Some(c) if c <= cycle)
    }
}

/// Circular reorder buffer.
///
/// Entries are allocated at dispatch (program order) and released at commit
/// (program order). Slots are recycled; [`InstId`] handles embed the
/// sequence number so stale handles never alias a newer instruction.
///
/// # Example
///
/// ```
/// use dcg_isa::{Inst, OpClass};
/// use dcg_sim::Rob;
///
/// let mut rob = Rob::new(128);
/// let id = rob.push(Inst::alu(0x1000, OpClass::IntAlu)).unwrap();
/// rob.get_mut(id).unwrap().complete_at = Some(5);
/// assert!(rob.get(id).unwrap().commit_ready(5));
/// assert_eq!(rob.pop_head().seq, id.seq());
/// assert!(rob.get(id).is_none(), "handles die at commit");
/// ```
#[derive(Debug)]
pub struct Rob {
    entries: Vec<Option<InFlight>>,
    head: usize,
    len: usize,
    next_seq: u64,
}

impl Rob {
    /// An empty reorder buffer with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Rob {
        assert!(capacity > 0, "ROB capacity must be positive");
        Rob {
            entries: (0..capacity).map(|_| None).collect(),
            head: 0,
            len: 0,
            next_seq: 0,
        }
    }

    /// Slots in use.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no instructions are in flight.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` when no slot is free.
    pub fn is_full(&self) -> bool {
        self.len == self.entries.len()
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Free slots remaining.
    pub fn free(&self) -> usize {
        self.capacity() - self.len
    }

    /// Allocate the next entry (program order). Returns `None` when full.
    pub fn push(&mut self, inst: Inst) -> Option<InstId> {
        if self.is_full() {
            return None;
        }
        let slot = (self.head + self.len) % self.entries.len();
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries[slot] = Some(InFlight::new(inst, seq));
        self.len += 1;
        Some(InstId {
            slot: slot as u32,
            seq,
        })
    }

    /// Entry for `id`, or `None` if it already committed (stale handle).
    pub fn get(&self, id: InstId) -> Option<&InFlight> {
        self.entries[id.slot as usize]
            .as_ref()
            .filter(|e| e.seq == id.seq)
    }

    /// Mutable entry for `id`, or `None` if it already committed.
    pub fn get_mut(&mut self, id: InstId) -> Option<&mut InFlight> {
        self.entries[id.slot as usize]
            .as_mut()
            .filter(|e| e.seq == id.seq)
    }

    /// Handle of the oldest in-flight instruction.
    pub fn head_id(&self) -> Option<InstId> {
        if self.is_empty() {
            return None;
        }
        let e = self.entries[self.head].as_ref().expect("head occupied");
        Some(InstId {
            slot: self.head as u32,
            seq: e.seq,
        })
    }

    /// Commit (remove) the oldest instruction and return its state.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    pub fn pop_head(&mut self) -> InFlight {
        assert!(!self.is_empty(), "pop from empty ROB");
        let e = self.entries[self.head].take().expect("head occupied");
        self.head = (self.head + 1) % self.entries.len();
        self.len -= 1;
        e
    }

    /// Iterate over in-flight handles in program order (oldest first).
    pub fn iter_ids(&self) -> impl Iterator<Item = InstId> + '_ {
        (0..self.len).map(move |k| {
            let slot = (self.head + k) % self.entries.len();
            let e = self.entries[slot].as_ref().expect("occupied");
            InstId {
                slot: slot as u32,
                seq: e.seq,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcg_isa::OpClass;

    fn inst(k: u64) -> Inst {
        Inst::alu(k * 4, OpClass::IntAlu)
    }

    #[test]
    fn push_get_pop_roundtrip() {
        let mut rob = Rob::new(4);
        let a = rob.push(inst(0)).unwrap();
        let b = rob.push(inst(1)).unwrap();
        assert_eq!(rob.len(), 2);
        assert_eq!(rob.get(a).unwrap().seq, 0);
        assert_eq!(rob.get(b).unwrap().seq, 1);
        assert_eq!(rob.head_id(), Some(a));
        let popped = rob.pop_head();
        assert_eq!(popped.seq, 0);
        assert_eq!(rob.head_id(), Some(b));
    }

    #[test]
    fn full_rejects_push() {
        let mut rob = Rob::new(2);
        rob.push(inst(0)).unwrap();
        rob.push(inst(1)).unwrap();
        assert!(rob.is_full());
        assert!(rob.push(inst(2)).is_none());
        rob.pop_head();
        assert!(rob.push(inst(2)).is_some());
    }

    #[test]
    fn stale_handles_do_not_alias() {
        let mut rob = Rob::new(2);
        let a = rob.push(inst(0)).unwrap();
        rob.pop_head();
        // Fill enough that slot 0 is reused.
        let _b = rob.push(inst(1)).unwrap();
        let c = rob.push(inst(2)).unwrap();
        assert!(rob.get(a).is_none(), "stale handle must not resolve");
        assert!(rob.get(c).is_some());
    }

    #[test]
    fn wraparound_preserves_order() {
        let mut rob = Rob::new(3);
        let mut ids = Vec::new();
        for k in 0..3 {
            ids.push(rob.push(inst(k)).unwrap());
        }
        rob.pop_head();
        rob.pop_head();
        for k in 3..5 {
            ids.push(rob.push(inst(k)).unwrap());
        }
        let order: Vec<u64> = rob.iter_ids().map(|id| id.seq()).collect();
        assert_eq!(order, vec![2, 3, 4]);
    }

    #[test]
    fn commit_ready_logic() {
        let mut e = InFlight::new(inst(0), 0);
        assert!(!e.commit_ready(100));
        e.complete_at = Some(50);
        assert!(!e.commit_ready(49));
        assert!(e.commit_ready(50));
    }

    #[test]
    #[should_panic(expected = "empty ROB")]
    fn pop_empty_panics() {
        let mut rob = Rob::new(1);
        let _ = rob.pop_head();
    }
}
