//! Simulator configuration (Table 1 of the paper).
//!
//! [`SimConfig::baseline_8wide`] reproduces the paper's baseline processor:
//!
//! > 8-way issue, 128-entry window, 64-entry load/store queue, 6 integer
//! > ALUs, 2 integer multiply/divide units, 4 floating point ALUs, 4
//! > floating point multiply/divide units; 2-level branch prediction,
//! > 8192-entry tables, 32-entry RAS, 8192-entry 4-way BTB, 8-cycle
//! > mispredict penalty; 64 KB 2-way 2-cycle I/D L1, 2 MB 8-way 12-cycle
//! > L2, both LRU; infinite-capacity 100-cycle main memory.
//!
//! The paper's §4.4 concludes 6 integer ALUs are power/performance optimal
//! for the 8-wide machine, and Table 1 uses that configuration; the
//! [`SimConfig::int_alus`] knob reproduces the §4.4 sweep.

use dcg_isa::{FuClass, OpClass};

/// Geometry of one class of execution units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuSpec {
    /// Number of unit instances.
    pub count: usize,
    /// Result latency in cycles (time from execute start to result).
    pub latency: u32,
    /// Initiation interval: 1 for fully pipelined units, `latency` for
    /// unpipelined units (e.g. dividers).
    pub interval: u32,
}

impl FuSpec {
    /// A fully pipelined unit class.
    pub fn pipelined(count: usize, latency: u32) -> FuSpec {
        FuSpec {
            count,
            latency,
            interval: 1,
        }
    }

    /// An unpipelined unit class (initiation interval = latency).
    pub fn unpipelined(count: usize, latency: u32) -> FuSpec {
        FuSpec {
            count,
            latency,
            interval: latency,
        }
    }
}

/// Parameters of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Access latency in cycles.
    pub latency: u32,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly or is not a power of
    /// two.
    pub fn sets(&self) -> usize {
        let sets = self.size_bytes / (self.ways as u64 * self.line_bytes);
        assert!(sets > 0, "cache too small for its geometry");
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets as usize
    }
}

/// Direction-predictor organisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PredictorKind {
    /// 2-level gshare-style predictor (Table 1's configuration).
    #[default]
    TwoLevel,
    /// Bimodal: the PHT is indexed by PC alone (no global history) —
    /// an ablation alternative, not the paper's configuration.
    Bimodal,
}

/// Branch-predictor parameters (2-level + BTB + RAS, per Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BpredConfig {
    /// Direction-predictor organisation.
    pub kind: PredictorKind,
    /// Entries in the pattern-history table (second level).
    pub pht_entries: usize,
    /// Global-history bits used to index the PHT.
    pub history_bits: u32,
    /// BTB entries.
    pub btb_entries: usize,
    /// BTB associativity.
    pub btb_ways: usize,
    /// Return-address-stack depth.
    pub ras_entries: usize,
}

/// How the simulator times committed stores' D-cache accesses, reproducing
/// the two options of paper §3.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreTiming {
    /// The store's cache access is known one cycle in advance (the
    /// load/store queue exposes the upcoming access), so clock-gate control
    /// can be set up with no delay. This is the paper's default assumption.
    #[default]
    KnownOneCycleAhead,
    /// No advance knowledge is available; the store is delayed by one cycle
    /// to create clock-gate set-up time ("virtually no performance loss"
    /// because stores produce no values — §3.3).
    DelayOneCycle,
}

/// Pipeline-depth geometry.
///
/// The base machine is the paper's 8-stage pipeline (Figure 3): Fetch,
/// Decode, Rename, Issue, Register read, Execute, Memory, Writeback. The
/// deep variant models the paper's §5.6 20-stage machine by splitting
/// stages; per §5.6, extra latches for any stage *except fetch, decode and
/// issue* remain gateable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineDepth {
    /// Fetch stages (ungateable latches).
    pub fetch: usize,
    /// Decode stages (ungateable latches).
    pub decode: usize,
    /// Rename stages (latches gated from decode information).
    pub rename: usize,
    /// Issue stages (ungateable latches — selection is known too late).
    pub issue: usize,
    /// Register-read stages (gated from issue information).
    pub regread: usize,
    /// Execute transport stages excluding the FU latency itself (gated).
    pub execute: usize,
    /// Memory stages (gated).
    pub mem: usize,
    /// Writeback stages (gated).
    pub writeback: usize,
}

impl PipelineDepth {
    /// The paper's 8-stage baseline.
    pub fn stages8() -> PipelineDepth {
        PipelineDepth {
            fetch: 1,
            decode: 1,
            rename: 1,
            issue: 1,
            regread: 1,
            execute: 1,
            mem: 1,
            writeback: 1,
        }
    }

    /// A 20-stage machine for the §5.6 deep-pipeline experiment.
    pub fn stages20() -> PipelineDepth {
        PipelineDepth {
            fetch: 3,
            decode: 3,
            rename: 2,
            issue: 2,
            regread: 2,
            execute: 2,
            mem: 3,
            writeback: 3,
        }
    }

    /// Total pipeline stages.
    pub fn total(&self) -> usize {
        self.fetch
            + self.decode
            + self.rename
            + self.issue
            + self.regread
            + self.execute
            + self.mem
            + self.writeback
    }

    /// Front-end depth in cycles: fetch through rename (the delay-line the
    /// simulator models before dispatch into the window).
    pub fn front_depth(&self) -> usize {
        self.fetch + self.decode + self.rename
    }

    /// Cycles between issue and execute (issue transit + register read).
    ///
    /// For the 8-stage machine this is 2 — the paper's Figure 6 timing:
    /// instructions selected in cycle X use the execution units in X+2.
    pub fn issue_to_execute(&self) -> u32 {
        (self.issue - 1 + self.regread + 1) as u32
    }

    /// Cycles between execute completion and writeback (memory-stage
    /// transit). For the 8-stage machine this is 2 (paper §3.4: an
    /// instruction executed in cycle X writes back in X+2).
    pub fn execute_to_writeback(&self) -> u32 {
        (self.mem + self.writeback - 1 + 1) as u32
    }
}

/// Full simulator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Maximum instructions issued per cycle (8 in Table 1).
    pub issue_width: usize,
    /// Maximum instructions committed per cycle.
    pub commit_width: usize,
    /// Reorder-buffer ("window") entries: 128 in Table 1.
    pub rob_entries: usize,
    /// Issue-queue entries.
    pub iq_entries: usize,
    /// Load/store-queue entries: 64 in Table 1.
    pub lsq_entries: usize,
    /// Integer ALU count (Table 1: 6; §4.4 sweeps 8/6/4).
    pub int_alus: usize,
    /// Integer multiply/divide unit count.
    pub int_muldivs: usize,
    /// FP ALU count.
    pub fp_alus: usize,
    /// FP multiply/divide unit count.
    pub fp_muldivs: usize,
    /// D-cache ports (each port = AGU + wordline decoder).
    pub mem_ports: usize,
    /// Result buses (one per issue slot in the baseline).
    pub result_buses: usize,
    /// Pipeline-depth geometry.
    pub depth: PipelineDepth,
    /// Branch predictor parameters.
    pub bpred: BpredConfig,
    /// L1 instruction cache.
    pub icache: CacheConfig,
    /// L1 data cache.
    pub dcache: CacheConfig,
    /// Unified L2 cache.
    pub l2: CacheConfig,
    /// Main-memory latency in cycles (Table 1: 100).
    pub mem_latency: u32,
    /// Store commit timing (paper §3.3).
    pub store_timing: StoreTiming,
    /// Tagged next-line D-cache prefetcher (extension knob; the paper's
    /// machine has none).
    pub dcache_next_line_prefetch: bool,
    /// Operation latencies, indexed by [`OpClass::index`]; memory classes
    /// hold the address-generation latency (cache latency is added by the
    /// memory model).
    pub op_latency: [u32; OpClass::COUNT],
    /// Unpipelined operation classes (occupy their unit for the full
    /// latency).
    pub unpipelined: [bool; OpClass::COUNT],
}

impl SimConfig {
    /// The paper's Table 1 baseline.
    pub fn baseline_8wide() -> SimConfig {
        let mut op_latency = [1u32; OpClass::COUNT];
        op_latency[OpClass::IntMul.index()] = 3;
        op_latency[OpClass::IntDiv.index()] = 20;
        op_latency[OpClass::FpAlu.index()] = 2;
        op_latency[OpClass::FpMul.index()] = 4;
        op_latency[OpClass::FpDiv.index()] = 12;
        let mut unpipelined = [false; OpClass::COUNT];
        unpipelined[OpClass::IntDiv.index()] = true;
        unpipelined[OpClass::FpDiv.index()] = true;

        SimConfig {
            fetch_width: 8,
            issue_width: 8,
            commit_width: 8,
            rob_entries: 128,
            iq_entries: 128,
            lsq_entries: 64,
            int_alus: 6,
            int_muldivs: 2,
            fp_alus: 4,
            fp_muldivs: 4,
            mem_ports: 2,
            result_buses: 8,
            depth: PipelineDepth::stages8(),
            bpred: BpredConfig {
                kind: PredictorKind::TwoLevel,
                pht_entries: 8192,
                history_bits: 13,
                btb_entries: 8192,
                btb_ways: 4,
                ras_entries: 32,
            },
            icache: CacheConfig {
                size_bytes: 64 << 10,
                ways: 2,
                line_bytes: 32,
                latency: 2,
            },
            dcache: CacheConfig {
                size_bytes: 64 << 10,
                ways: 2,
                line_bytes: 32,
                latency: 2,
            },
            l2: CacheConfig {
                size_bytes: 2 << 20,
                ways: 8,
                line_bytes: 64,
                latency: 12,
            },
            mem_latency: 100,
            store_timing: StoreTiming::default(),
            dcache_next_line_prefetch: false,
            op_latency,
            unpipelined,
        }
    }

    /// The §5.6 deep-pipeline (20-stage) variant of the baseline.
    pub fn deep_pipeline_20() -> SimConfig {
        SimConfig {
            depth: PipelineDepth::stages20(),
            ..Self::baseline_8wide()
        }
    }

    /// Number of unit instances of `class`.
    pub fn fu_count(&self, class: FuClass) -> usize {
        match class {
            FuClass::IntAlu => self.int_alus,
            FuClass::IntMulDiv => self.int_muldivs,
            FuClass::FpAlu => self.fp_alus,
            FuClass::FpMulDiv => self.fp_muldivs,
            FuClass::MemPort => self.mem_ports,
        }
    }

    /// Execution spec (latency/interval) for an operation class.
    pub fn op_spec(&self, op: OpClass) -> FuSpec {
        let latency = self.op_latency[op.index()];
        let count = self.fu_count(op.fu_class());
        if self.unpipelined[op.index()] {
            FuSpec::unpipelined(count, latency)
        } else {
            FuSpec::pipelined(count, latency)
        }
    }

    /// Stable 64-bit content digest over every configuration field
    /// (FNV-1a, hand-rolled so it never changes across toolchains).
    ///
    /// Two configurations digest equally iff they simulate identically,
    /// so the digest content-addresses cached activity traces: any field
    /// change — widths, unit counts, cache geometry, latencies, pipeline
    /// depth — yields a different digest and therefore a different cache
    /// entry. Not a cryptographic hash.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut state = OFFSET;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                state ^= u64::from(byte);
                state = state.wrapping_mul(PRIME);
            }
        };
        for v in [
            self.fetch_width as u64,
            self.issue_width as u64,
            self.commit_width as u64,
            self.rob_entries as u64,
            self.iq_entries as u64,
            self.lsq_entries as u64,
            self.int_alus as u64,
            self.int_muldivs as u64,
            self.fp_alus as u64,
            self.fp_muldivs as u64,
            self.mem_ports as u64,
            self.result_buses as u64,
            self.depth.fetch as u64,
            self.depth.decode as u64,
            self.depth.rename as u64,
            self.depth.issue as u64,
            self.depth.regread as u64,
            self.depth.execute as u64,
            self.depth.mem as u64,
            self.depth.writeback as u64,
            match self.bpred.kind {
                PredictorKind::TwoLevel => 0,
                PredictorKind::Bimodal => 1,
            },
            self.bpred.pht_entries as u64,
            u64::from(self.bpred.history_bits),
            self.bpred.btb_entries as u64,
            self.bpred.btb_ways as u64,
            self.bpred.ras_entries as u64,
            u64::from(self.mem_latency),
            match self.store_timing {
                StoreTiming::KnownOneCycleAhead => 0,
                StoreTiming::DelayOneCycle => 1,
            },
            u64::from(self.dcache_next_line_prefetch),
        ] {
            mix(v);
        }
        for c in [&self.icache, &self.dcache, &self.l2] {
            mix(c.size_bytes);
            mix(c.ways as u64);
            mix(c.line_bytes);
            mix(u64::from(c.latency));
        }
        for lat in self.op_latency {
            mix(u64::from(lat));
        }
        for up in self.unpipelined {
            mix(u64::from(up));
        }
        state
    }

    /// Validate structural constraints.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.fetch_width == 0 || self.issue_width == 0 || self.commit_width == 0 {
            return Err("widths must be positive".into());
        }
        if self.rob_entries < self.issue_width {
            return Err("ROB must hold at least one issue group".into());
        }
        if self.iq_entries == 0 || self.lsq_entries == 0 {
            return Err("queues must be non-empty".into());
        }
        if self.int_alus == 0 || self.mem_ports == 0 {
            return Err("need at least one integer ALU and one memory port".into());
        }
        if self.result_buses == 0 {
            return Err("need at least one result bus".into());
        }
        for c in [&self.icache, &self.dcache, &self.l2] {
            let _ = c.sets(); // panics on bad geometry are converted below
            if c.latency == 0 {
                return Err("cache latency must be positive".into());
            }
        }
        if self.depth.total() < 8 {
            return Err("pipeline must have at least 8 stages".into());
        }
        Ok(())
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::baseline_8wide()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table_1() {
        let c = SimConfig::baseline_8wide();
        c.validate().expect("baseline is valid");
        assert_eq!(c.issue_width, 8);
        assert_eq!(c.rob_entries, 128);
        assert_eq!(c.lsq_entries, 64);
        assert_eq!(c.int_alus, 6);
        assert_eq!(c.int_muldivs, 2);
        assert_eq!(c.fp_alus, 4);
        assert_eq!(c.fp_muldivs, 4);
        assert_eq!(c.bpred.pht_entries, 8192);
        assert_eq!(c.bpred.btb_entries, 8192);
        assert_eq!(c.bpred.btb_ways, 4);
        assert_eq!(c.bpred.ras_entries, 32);
        assert_eq!(c.icache.size_bytes, 64 << 10);
        assert_eq!(c.dcache.latency, 2);
        assert_eq!(c.l2.size_bytes, 2 << 20);
        assert_eq!(c.l2.latency, 12);
        assert_eq!(c.mem_latency, 100);
        assert_eq!(c.depth.total(), 8);
    }

    #[test]
    fn deep_pipeline_has_20_stages() {
        let c = SimConfig::deep_pipeline_20();
        c.validate().expect("valid");
        assert_eq!(c.depth.total(), 20);
        assert!(c.depth.front_depth() > PipelineDepth::stages8().front_depth());
    }

    #[test]
    fn issue_to_execute_matches_figure_6() {
        // Paper Figure 6: instructions selected in cycle X use the
        // execution units in cycle X+2.
        assert_eq!(PipelineDepth::stages8().issue_to_execute(), 2);
        // Paper §3.4: executed in X, writeback in X+2.
        assert_eq!(PipelineDepth::stages8().execute_to_writeback(), 2);
    }

    #[test]
    fn cache_geometry() {
        let c = SimConfig::baseline_8wide();
        assert_eq!(c.dcache.sets(), 1024);
        assert_eq!(c.l2.sets(), 4096);
    }

    #[test]
    fn op_specs() {
        let c = SimConfig::baseline_8wide();
        let div = c.op_spec(OpClass::IntDiv);
        assert_eq!(div.interval, div.latency, "divide is unpipelined");
        let mul = c.op_spec(OpClass::FpMul);
        assert_eq!(mul.interval, 1, "FP multiply is pipelined");
        assert_eq!(mul.count, 4);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = SimConfig::baseline_8wide();
        c.issue_width = 0;
        assert!(c.validate().is_err());

        let mut c = SimConfig::baseline_8wide();
        c.int_alus = 0;
        assert!(c.validate().is_err());

        let mut c = SimConfig::baseline_8wide();
        c.rob_entries = 4;
        assert!(c.validate().is_err());
    }

    #[test]
    fn digest_is_stable_and_field_sensitive() {
        let base = SimConfig::baseline_8wide();
        assert_eq!(base.digest(), SimConfig::baseline_8wide().digest());
        assert_ne!(base.digest(), SimConfig::deep_pipeline_20().digest());
        let fewer_alus = SimConfig {
            int_alus: 4,
            ..SimConfig::baseline_8wide()
        };
        assert_ne!(base.digest(), fewer_alus.digest());
        let slow_mem = SimConfig {
            mem_latency: 101,
            ..SimConfig::baseline_8wide()
        };
        assert_ne!(base.digest(), slow_mem.digest());
        let delayed_stores = SimConfig {
            store_timing: StoreTiming::DelayOneCycle,
            ..SimConfig::baseline_8wide()
        };
        assert_ne!(base.digest(), delayed_stores.digest());
    }

    #[test]
    fn fu_counts_route_correctly() {
        let c = SimConfig::baseline_8wide();
        assert_eq!(c.fu_count(FuClass::IntAlu), 6);
        assert_eq!(c.fu_count(FuClass::MemPort), 2);
    }
}
