//! Per-cycle activity records and pipeline-latch geometry.
//!
//! [`CycleActivity`] is the contract between the simulator, the power model
//! and the clock-gating policies:
//!
//! * **usage counts** say what actually happened this cycle (for energy
//!   accounting and for verifying that a gating policy never gated a used
//!   block);
//! * **advance-knowledge signals** say what is *deterministically known* at
//!   the end of this cycle about near-future cycles (issue GRANTs, the
//!   one-hot issued-slot count, scheduled stores, booked result buses) —
//!   exactly the signals the paper's DCG controller taps (§3).

use dcg_isa::FuClass;

use crate::config::PipelineDepth;

/// Where a latch group's occupancy (and DCG gate control) comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowSource {
    /// Instructions fetched per cycle (front-end flow).
    Fetched,
    /// Instructions traversing rename per cycle (known from decode one
    /// cycle earlier — paper §2.2.1).
    Renamed,
    /// Instructions issued per cycle (the one-hot encoding of §3.2).
    Issued,
}

/// One pipeline-latch group (the latch bank at the end of one stage).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatchGroupSpec {
    /// Stage name, e.g. `"regread0"`.
    pub name: String,
    /// Which flow's count gives this group's occupancy.
    pub source: FlowSource,
    /// Occupancy at cycle `X` equals the source flow at `X - delay`.
    pub delay: u32,
    /// `true` if DCG can gate this group (paper Figure 3 tick marks:
    /// rename and all post-issue latches; fetch/decode/issue cannot be
    /// gated).
    pub gated: bool,
}

/// The ordered set of latch groups implied by a pipeline geometry.
///
/// # Example
///
/// ```
/// use dcg_sim::{LatchGroups, PipelineDepth};
///
/// let groups = LatchGroups::new(&PipelineDepth::stages8());
/// assert_eq!(groups.len(), 8);
/// // Paper Figure 3: rename + the four post-issue stages are gateable.
/// assert_eq!(groups.gated_count(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct LatchGroups {
    specs: Vec<LatchGroupSpec>,
}

impl LatchGroups {
    /// Derive the latch groups for `depth`.
    ///
    /// For the paper's 8-stage pipeline this yields 8 groups of which 5 are
    /// gateable (rename, regread, execute, memory, writeback).
    pub fn new(depth: &PipelineDepth) -> LatchGroups {
        let mut specs = Vec::with_capacity(depth.total());
        for i in 0..depth.fetch {
            specs.push(LatchGroupSpec {
                name: format!("fetch{i}"),
                source: FlowSource::Fetched,
                delay: i as u32,
                gated: false,
            });
        }
        for i in 0..depth.decode {
            specs.push(LatchGroupSpec {
                name: format!("decode{i}"),
                source: FlowSource::Fetched,
                delay: (depth.fetch + i) as u32,
                gated: false,
            });
        }
        for i in 0..depth.rename {
            specs.push(LatchGroupSpec {
                name: format!("rename{i}"),
                source: FlowSource::Renamed,
                delay: i as u32,
                gated: true,
            });
        }
        for i in 0..depth.issue {
            specs.push(LatchGroupSpec {
                name: format!("issue{i}"),
                source: FlowSource::Issued,
                delay: 0,
                gated: false,
            });
        }
        let mut back_delay = 1u32;
        for (stage, count) in [
            ("regread", depth.regread),
            ("execute", depth.execute),
            ("mem", depth.mem),
            ("writeback", depth.writeback),
        ] {
            for i in 0..count {
                specs.push(LatchGroupSpec {
                    name: format!("{stage}{i}"),
                    source: FlowSource::Issued,
                    delay: back_delay,
                    gated: true,
                });
                back_delay += 1;
            }
        }
        LatchGroups { specs }
    }

    /// The group specifications, in pipeline order.
    pub fn specs(&self) -> &[LatchGroupSpec] {
        &self.specs
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// `true` if there are no groups (never happens for valid geometries).
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Number of gateable groups.
    pub fn gated_count(&self) -> usize {
        self.specs.iter().filter(|s| s.gated).count()
    }

    /// Maximum delay used by any group (history depth requirement).
    pub fn max_delay(&self) -> u32 {
        self.specs.iter().map(|s| s.delay).max().unwrap_or(0)
    }

    /// Compute per-group occupancy from a flow history.
    pub fn occupancies(&self, history: &FlowHistory, out: &mut Vec<u32>) {
        out.clear();
        out.extend(self.specs.iter().map(|s| history.get(s.source, s.delay)));
    }
}

/// Ring-buffer history of the three per-cycle flows that determine latch
/// occupancy.
#[derive(Debug, Clone)]
pub struct FlowHistory {
    fetched: [u32; Self::DEPTH],
    renamed: [u32; Self::DEPTH],
    issued: [u32; Self::DEPTH],
    pos: usize,
}

impl FlowHistory {
    /// History depth in cycles; comfortably exceeds any latch delay.
    pub const DEPTH: usize = 32;

    /// A history with all flows zero.
    pub fn new() -> FlowHistory {
        FlowHistory {
            fetched: [0; Self::DEPTH],
            renamed: [0; Self::DEPTH],
            issued: [0; Self::DEPTH],
            pos: 0,
        }
    }

    /// Record this cycle's flows (call once per cycle).
    pub fn record(&mut self, fetched: u32, renamed: u32, issued: u32) {
        self.pos = (self.pos + 1) % Self::DEPTH;
        self.fetched[self.pos] = fetched;
        self.renamed[self.pos] = renamed;
        self.issued[self.pos] = issued;
    }

    /// Flow value `delay` cycles ago (0 = the cycle just recorded).
    pub fn get(&self, source: FlowSource, delay: u32) -> u32 {
        let d = delay as usize % Self::DEPTH;
        let idx = (self.pos + Self::DEPTH - d) % Self::DEPTH;
        match source {
            FlowSource::Fetched => self.fetched[idx],
            FlowSource::Renamed => self.renamed[idx],
            FlowSource::Issued => self.issued[idx],
        }
    }
}

impl Default for FlowHistory {
    fn default() -> Self {
        Self::new()
    }
}

/// One issue-stage GRANT: the selection logic matched an instruction to an
/// execution-unit instance (paper Figure 4), fixing that instance's future
/// activity deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuGrant {
    /// Unit class granted.
    pub class: FuClass,
    /// Instance within the class.
    pub instance: usize,
    /// Cycles from now until the instance becomes active (2 for the
    /// 8-stage pipeline's execute stage; 3 for a load's D-cache access).
    pub exec_start: u32,
    /// Cycles the instance stays active (op latency; 1 for cache ports).
    pub active_len: u32,
}

/// Everything that happened in (and is deterministically known at the end
/// of) one simulated cycle.
///
/// This record is the complete interface between the timing simulation and
/// everything downstream (power accounting, gating policies, statistics):
/// a recorded stream of `CycleActivity` replays bit-identically through
/// any passive policy. The `dcg-trace` activity frame serializes every
/// field; adding, removing or re-meaning a field requires bumping that
/// format's schema constant so stale cached traces are invalidated.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CycleActivity {
    /// Cycle number.
    pub cycle: u64,
    // ---- flows ----
    /// Instructions fetched.
    pub fetched: u32,
    /// Instructions entering rename.
    pub renamed: u32,
    /// Instructions dispatched into the window.
    pub dispatched: u32,
    /// Instructions issued (selected).
    pub issued: u32,
    /// Issued floating-point operations.
    pub issued_fp: u32,
    /// Issued loads.
    pub issued_loads: u32,
    /// Issued stores.
    pub issued_stores: u32,
    /// Instructions committed.
    pub committed: u32,
    // ---- usage (this cycle) ----
    /// Busy mask per unit class (bit *i* = instance *i* active), indexed by
    /// [`FuClass::index`].
    pub fu_active: [u32; FuClass::COUNT],
    /// D-cache port mask in use this cycle (wordline decoders firing).
    pub dcache_port_mask: u32,
    /// Loads accessing the D-cache this cycle.
    pub dcache_load_accesses: u32,
    /// Stores accessing the D-cache this cycle.
    pub dcache_store_accesses: u32,
    /// D-cache accesses that missed (this cycle's accesses).
    pub dcache_misses: u32,
    /// L2 accesses initiated this cycle.
    pub l2_accesses: u32,
    /// I-cache probed this cycle.
    pub icache_access: bool,
    /// The I-cache probe missed.
    pub icache_miss: bool,
    /// Branch-predictor lookups.
    pub bpred_lookups: u32,
    /// Branch-predictor lookups that mispredicted this cycle.
    pub bpred_mispredicts: u32,
    /// Register-file read ports used (issued source operands).
    pub regfile_reads: u32,
    /// Register-file write ports used (writebacks).
    pub regfile_writes: u32,
    /// Result buses driven this cycle.
    pub result_bus_used: u32,
    /// Per-latch-group slots written this cycle (indexed like
    /// [`LatchGroups::specs`]).
    pub latch_occupancy: Vec<u32>,
    // ---- advance knowledge (known at end of this cycle) ----
    /// Issue-stage grants made this cycle (future unit activity).
    pub grants: Vec<FuGrant>,
    /// Instructions sitting at the end of decode that will traverse rename
    /// next cycle (paper §2.2.1: the rename latch's gate control is known
    /// from the decode stage one cycle ahead). The actual rename flow next
    /// cycle is at most this (zero if rename stalls).
    pub decode_ready_next: u32,
    /// Issue-queue entries occupied at the end of this cycle. Entries
    /// beyond `iq_occupancy + dispatch width` are deterministically empty
    /// next cycle — the signal behind the deterministic issue-queue gating
    /// of \[6\], which the paper cites in §2.2.2.
    pub iq_occupancy: u32,
    /// Reorder-buffer entries occupied at the end of this cycle (window
    /// fill level; feeds the occupancy histograms of the metrics layer).
    pub rob_occupancy: u32,
    /// Load/store-queue entries occupied at the end of this cycle.
    pub lsq_occupancy: u32,
    /// Store D-cache accesses already scheduled for the *next* cycle
    /// (paper §3.3 advance knowledge), as (port, count) mask.
    pub store_ports_next: u32,
    /// Result buses already booked for cycle `cycle + 2` (paper §3.4:
    /// writeback usage is known two cycles ahead).
    pub result_bus_in_2: u32,
}

impl CycleActivity {
    /// Reset all fields for reuse (keeps allocations).
    pub fn reset(&mut self, cycle: u64) {
        let mut grants = std::mem::take(&mut self.grants);
        let mut latches = std::mem::take(&mut self.latch_occupancy);
        grants.clear();
        latches.clear();
        *self = CycleActivity {
            cycle,
            latch_occupancy: latches,
            grants,
            ..CycleActivity::default()
        };
    }
}

/// Cycles per [`ActivityBlock`] (and per on-disk trace block).
///
/// Chosen to match the lane width of `u64` masks: bit *i* of a lane mask
/// refers to cycle `first_cycle + i` of the block, so "any cycle in this
/// block touched X" is a single mask test and "how many cycles" is one
/// popcount.
pub const BLOCK_CYCLES: usize = 64;

/// Struct-of-arrays batch of up to [`BLOCK_CYCLES`] consecutive
/// [`CycleActivity`] records.
///
/// This is the hot-path representation behind the per-cycle
/// [`CycleActivity`] interface: the trace reader decodes straight into a
/// block, statistics fold over whole columns, and boolean per-cycle facts
/// (I-cache touched, any FU of a class busy, any D-cache port firing, any
/// result bus driven, latch group occupied) are packed as `u64` *lane
/// masks* where bit `i` stands for cycle index `i` within the block.
///
/// Invariants (maintained by [`push`](ActivityBlock::push), relied on by
/// [`extract`](ActivityBlock::extract)):
///
/// * column `i` of every array describes cycle `first_cycle + i`, valid
///   for `i < len`;
/// * `latch_occupancy` is cycle-major: cycle `i`, group `g` lives at
///   `i * groups + g`;
/// * `grants` is flat; cycle `i`'s grants are
///   `grants[grant_end[i-1]..grant_end[i]]` (`0` for the lower bound at
///   `i == 0`);
/// * the lane masks and per-class `fu_any` summaries agree with the
///   columns they summarize.
///
/// A round-trip through `push` + `extract` reproduces the original
/// [`CycleActivity`] exactly (covered by a property suite), which is what
/// lets the block path claim bit-identity with the scalar path.
#[derive(Debug, Clone)]
pub struct ActivityBlock {
    /// Cycle number of column 0.
    pub first_cycle: u64,
    /// Valid columns (`<= BLOCK_CYCLES`).
    pub len: usize,
    /// Latch groups per cycle (row width of `latch_occupancy`).
    pub groups: usize,
    // ---- flows ----
    /// Instructions fetched per cycle.
    pub fetched: [u32; BLOCK_CYCLES],
    /// Instructions entering rename per cycle.
    pub renamed: [u32; BLOCK_CYCLES],
    /// Instructions dispatched per cycle.
    pub dispatched: [u32; BLOCK_CYCLES],
    /// Instructions issued per cycle.
    pub issued: [u32; BLOCK_CYCLES],
    /// Issued FP operations per cycle.
    pub issued_fp: [u32; BLOCK_CYCLES],
    /// Issued loads per cycle.
    pub issued_loads: [u32; BLOCK_CYCLES],
    /// Issued stores per cycle.
    pub issued_stores: [u32; BLOCK_CYCLES],
    /// Instructions committed per cycle.
    pub committed: [u32; BLOCK_CYCLES],
    // ---- usage ----
    /// Per-class busy masks, indexed by [`FuClass::index`] then cycle.
    pub fu_active: [[u32; BLOCK_CYCLES]; FuClass::COUNT],
    /// Lane mask per unit class: bit `i` set iff any instance of the class
    /// was active at cycle `i`.
    pub fu_any: [u64; FuClass::COUNT],
    /// D-cache port mask per cycle.
    pub dcache_port_mask: [u32; BLOCK_CYCLES],
    /// Lane mask: bit `i` set iff any D-cache port fired at cycle `i`.
    pub port_any: u64,
    /// Loads accessing the D-cache per cycle.
    pub dcache_load_accesses: [u32; BLOCK_CYCLES],
    /// Stores accessing the D-cache per cycle.
    pub dcache_store_accesses: [u32; BLOCK_CYCLES],
    /// D-cache misses per cycle.
    pub dcache_misses: [u32; BLOCK_CYCLES],
    /// L2 accesses per cycle.
    pub l2_accesses: [u32; BLOCK_CYCLES],
    /// Lane mask: bit `i` set iff the I-cache was probed at cycle `i`.
    pub icache_access_lanes: u64,
    /// Lane mask: bit `i` set iff the I-cache probe missed at cycle `i`.
    pub icache_miss_lanes: u64,
    /// Branch-predictor lookups per cycle.
    pub bpred_lookups: [u32; BLOCK_CYCLES],
    /// Branch mispredictions per cycle.
    pub bpred_mispredicts: [u32; BLOCK_CYCLES],
    /// Register-file read ports used per cycle.
    pub regfile_reads: [u32; BLOCK_CYCLES],
    /// Register-file write ports used per cycle.
    pub regfile_writes: [u32; BLOCK_CYCLES],
    /// Result buses driven per cycle.
    pub result_bus_used: [u32; BLOCK_CYCLES],
    /// Lane mask: bit `i` set iff any result bus was driven at cycle `i`.
    pub bus_any: u64,
    /// Cycle-major latch occupancy (`len * groups` entries).
    pub latch_occupancy: Vec<u32>,
    /// Lane mask per latch group: bit `i` set iff the group had any slot
    /// written at cycle `i` (`groups` entries).
    pub latch_any: Vec<u64>,
    /// Flat grant list for the whole block.
    pub grants: Vec<FuGrant>,
    /// Exclusive end index into `grants` for each cycle.
    pub grant_end: [u32; BLOCK_CYCLES],
    // ---- advance knowledge ----
    /// Decode-ready count per cycle.
    pub decode_ready_next: [u32; BLOCK_CYCLES],
    /// Issue-queue occupancy per cycle.
    pub iq_occupancy: [u32; BLOCK_CYCLES],
    /// Reorder-buffer occupancy per cycle.
    pub rob_occupancy: [u32; BLOCK_CYCLES],
    /// Load/store-queue occupancy per cycle.
    pub lsq_occupancy: [u32; BLOCK_CYCLES],
    /// Stores scheduled for the next cycle, per cycle.
    pub store_ports_next: [u32; BLOCK_CYCLES],
    /// Result buses booked two cycles ahead, per cycle.
    pub result_bus_in_2: [u32; BLOCK_CYCLES],
}

impl ActivityBlock {
    /// Empty block for traces with `groups` latch groups per cycle.
    pub fn new(groups: usize) -> ActivityBlock {
        ActivityBlock {
            first_cycle: 0,
            len: 0,
            groups,
            fetched: [0; BLOCK_CYCLES],
            renamed: [0; BLOCK_CYCLES],
            dispatched: [0; BLOCK_CYCLES],
            issued: [0; BLOCK_CYCLES],
            issued_fp: [0; BLOCK_CYCLES],
            issued_loads: [0; BLOCK_CYCLES],
            issued_stores: [0; BLOCK_CYCLES],
            committed: [0; BLOCK_CYCLES],
            fu_active: [[0; BLOCK_CYCLES]; FuClass::COUNT],
            fu_any: [0; FuClass::COUNT],
            dcache_port_mask: [0; BLOCK_CYCLES],
            port_any: 0,
            dcache_load_accesses: [0; BLOCK_CYCLES],
            dcache_store_accesses: [0; BLOCK_CYCLES],
            dcache_misses: [0; BLOCK_CYCLES],
            l2_accesses: [0; BLOCK_CYCLES],
            icache_access_lanes: 0,
            icache_miss_lanes: 0,
            bpred_lookups: [0; BLOCK_CYCLES],
            bpred_mispredicts: [0; BLOCK_CYCLES],
            regfile_reads: [0; BLOCK_CYCLES],
            regfile_writes: [0; BLOCK_CYCLES],
            result_bus_used: [0; BLOCK_CYCLES],
            bus_any: 0,
            latch_occupancy: Vec::with_capacity(BLOCK_CYCLES * groups),
            latch_any: vec![0; groups],
            grants: Vec::new(),
            grant_end: [0; BLOCK_CYCLES],
            decode_ready_next: [0; BLOCK_CYCLES],
            iq_occupancy: [0; BLOCK_CYCLES],
            rob_occupancy: [0; BLOCK_CYCLES],
            lsq_occupancy: [0; BLOCK_CYCLES],
            store_ports_next: [0; BLOCK_CYCLES],
            result_bus_in_2: [0; BLOCK_CYCLES],
        }
    }

    /// Reset for reuse (keeps allocations); column 0 will be `first_cycle`.
    pub fn clear(&mut self, first_cycle: u64) {
        self.first_cycle = first_cycle;
        self.len = 0;
        self.fu_any = [0; FuClass::COUNT];
        self.port_any = 0;
        self.bus_any = 0;
        self.icache_access_lanes = 0;
        self.icache_miss_lanes = 0;
        self.latch_occupancy.clear();
        self.latch_any.iter_mut().for_each(|m| *m = 0);
        self.grants.clear();
    }

    /// Valid columns.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no cycles have been pushed since the last clear.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Cycle number of column `i`.
    pub fn cycle(&self, i: usize) -> u64 {
        debug_assert!(i < self.len);
        self.first_cycle + i as u64
    }

    /// Lane mask with bits `from..to` set (the screen/summary masks are
    /// ANDed with this to restrict a query to a sub-span of the block).
    pub fn lane_range(from: usize, to: usize) -> u64 {
        debug_assert!(from <= to && to <= BLOCK_CYCLES);
        let hi = if to == BLOCK_CYCLES {
            u64::MAX
        } else {
            (1u64 << to) - 1
        };
        let lo = if from == BLOCK_CYCLES {
            u64::MAX
        } else {
            (1u64 << from) - 1
        };
        hi & !lo
    }

    /// Latch occupancies of cycle `i` (one entry per group).
    pub fn latches(&self, i: usize) -> &[u32] {
        debug_assert!(i < self.len);
        &self.latch_occupancy[i * self.groups..(i + 1) * self.groups]
    }

    /// Grants made at cycle `i`.
    pub fn grants_at(&self, i: usize) -> &[FuGrant] {
        debug_assert!(i < self.len);
        let lo = if i == 0 {
            0
        } else {
            self.grant_end[i - 1] as usize
        };
        &self.grants[lo..self.grant_end[i] as usize]
    }

    /// Append one cycle (must be the next consecutive cycle, with
    /// `groups` latch entries).
    ///
    /// # Panics
    ///
    /// Panics if the block is full or `act` does not continue the block.
    pub fn push(&mut self, act: &CycleActivity) {
        if self.len == 0 {
            self.first_cycle = act.cycle;
        }
        assert_eq!(
            act.cycle,
            self.first_cycle + self.len as u64,
            "non-consecutive cycle pushed into ActivityBlock"
        );
        self.push_untimed(act);
    }

    /// Append one cycle ignoring `act.cycle` — lane numbers stay implicit
    /// (`first_cycle + index`). The trace writer stages records through
    /// this: on-disk cycle numbers are reconstructed by counting, so the
    /// record's own `cycle` field never constrains the block.
    ///
    /// # Panics
    ///
    /// Panics if the block is full or the latch group count mismatches.
    pub fn push_untimed(&mut self, act: &CycleActivity) {
        assert!(self.len < BLOCK_CYCLES, "ActivityBlock overflow");
        assert_eq!(act.latch_occupancy.len(), self.groups, "latch group count");
        let i = self.len;
        let bit = 1u64 << i;
        self.fetched[i] = act.fetched;
        self.renamed[i] = act.renamed;
        self.dispatched[i] = act.dispatched;
        self.issued[i] = act.issued;
        self.issued_fp[i] = act.issued_fp;
        self.issued_loads[i] = act.issued_loads;
        self.issued_stores[i] = act.issued_stores;
        self.committed[i] = act.committed;
        for c in 0..FuClass::COUNT {
            let m = act.fu_active[c];
            self.fu_active[c][i] = m;
            if m != 0 {
                self.fu_any[c] |= bit;
            }
        }
        self.dcache_port_mask[i] = act.dcache_port_mask;
        if act.dcache_port_mask != 0 {
            self.port_any |= bit;
        }
        self.dcache_load_accesses[i] = act.dcache_load_accesses;
        self.dcache_store_accesses[i] = act.dcache_store_accesses;
        self.dcache_misses[i] = act.dcache_misses;
        self.l2_accesses[i] = act.l2_accesses;
        if act.icache_access {
            self.icache_access_lanes |= bit;
        }
        if act.icache_miss {
            self.icache_miss_lanes |= bit;
        }
        self.bpred_lookups[i] = act.bpred_lookups;
        self.bpred_mispredicts[i] = act.bpred_mispredicts;
        self.regfile_reads[i] = act.regfile_reads;
        self.regfile_writes[i] = act.regfile_writes;
        self.result_bus_used[i] = act.result_bus_used;
        if act.result_bus_used != 0 {
            self.bus_any |= bit;
        }
        self.latch_occupancy.extend_from_slice(&act.latch_occupancy);
        for (g, &occ) in act.latch_occupancy.iter().enumerate() {
            if occ != 0 {
                self.latch_any[g] |= bit;
            }
        }
        self.grants.extend_from_slice(&act.grants);
        self.grant_end[i] = self.grants.len() as u32;
        self.decode_ready_next[i] = act.decode_ready_next;
        self.iq_occupancy[i] = act.iq_occupancy;
        self.rob_occupancy[i] = act.rob_occupancy;
        self.lsq_occupancy[i] = act.lsq_occupancy;
        self.store_ports_next[i] = act.store_ports_next;
        self.result_bus_in_2[i] = act.result_bus_in_2;
        self.len = i + 1;
    }

    /// Reconstruct column `i` as a [`CycleActivity`] (exact inverse of
    /// [`push`](ActivityBlock::push); reuses `out`'s allocations).
    pub fn extract(&self, i: usize, out: &mut CycleActivity) {
        debug_assert!(i < self.len, "extract past block length");
        out.reset(self.first_cycle + i as u64);
        out.fetched = self.fetched[i];
        out.renamed = self.renamed[i];
        out.dispatched = self.dispatched[i];
        out.issued = self.issued[i];
        out.issued_fp = self.issued_fp[i];
        out.issued_loads = self.issued_loads[i];
        out.issued_stores = self.issued_stores[i];
        out.committed = self.committed[i];
        for c in 0..FuClass::COUNT {
            out.fu_active[c] = self.fu_active[c][i];
        }
        out.dcache_port_mask = self.dcache_port_mask[i];
        out.dcache_load_accesses = self.dcache_load_accesses[i];
        out.dcache_store_accesses = self.dcache_store_accesses[i];
        out.dcache_misses = self.dcache_misses[i];
        out.l2_accesses = self.l2_accesses[i];
        let bit = 1u64 << i;
        out.icache_access = self.icache_access_lanes & bit != 0;
        out.icache_miss = self.icache_miss_lanes & bit != 0;
        out.bpred_lookups = self.bpred_lookups[i];
        out.bpred_mispredicts = self.bpred_mispredicts[i];
        out.regfile_reads = self.regfile_reads[i];
        out.regfile_writes = self.regfile_writes[i];
        out.result_bus_used = self.result_bus_used[i];
        out.latch_occupancy.extend_from_slice(self.latches(i));
        out.grants.extend_from_slice(self.grants_at(i));
        out.decode_ready_next = self.decode_ready_next[i];
        out.iq_occupancy = self.iq_occupancy[i];
        out.rob_occupancy = self.rob_occupancy[i];
        out.lsq_occupancy = self.lsq_occupancy[i];
        out.store_ports_next = self.store_ports_next[i];
        out.result_bus_in_2 = self.result_bus_in_2[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_stage_groups_match_paper_figure_3() {
        let g = LatchGroups::new(&PipelineDepth::stages8());
        assert_eq!(g.len(), 8);
        assert_eq!(g.gated_count(), 5, "rename + rf/ex/mem/wb are gateable");
        let names: Vec<&str> = g.specs().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "fetch0",
                "decode0",
                "rename0",
                "issue0",
                "regread0",
                "execute0",
                "mem0",
                "writeback0"
            ]
        );
        // Fetch/decode/issue latches cannot be gated (paper §2.2.1).
        for s in g.specs() {
            let front = s.name.starts_with("fetch")
                || s.name.starts_with("decode")
                || s.name.starts_with("issue");
            assert_eq!(s.gated, !front, "{}", s.name);
        }
    }

    #[test]
    fn twenty_stage_groups_keep_gateable_majority() {
        let g = LatchGroups::new(&PipelineDepth::stages20());
        assert_eq!(g.len(), 20);
        assert_eq!(g.gated_count(), 12);
        assert!(g.max_delay() < FlowHistory::DEPTH as u32);
    }

    #[test]
    fn backend_delays_are_consecutive() {
        let g = LatchGroups::new(&PipelineDepth::stages8());
        let backend: Vec<u32> = g
            .specs()
            .iter()
            .filter(|s| s.source == FlowSource::Issued && s.gated)
            .map(|s| s.delay)
            .collect();
        assert_eq!(backend, vec![1, 2, 3, 4]);
    }

    #[test]
    fn flow_history_lookup() {
        let mut h = FlowHistory::new();
        h.record(8, 6, 4); // cycle 0
        h.record(7, 5, 3); // cycle 1
        assert_eq!(h.get(FlowSource::Fetched, 0), 7);
        assert_eq!(h.get(FlowSource::Fetched, 1), 8);
        assert_eq!(h.get(FlowSource::Renamed, 0), 5);
        assert_eq!(h.get(FlowSource::Issued, 1), 4);
        assert_eq!(h.get(FlowSource::Issued, 5), 0, "pre-history is zero");
    }

    #[test]
    fn occupancies_follow_delays() {
        let groups = LatchGroups::new(&PipelineDepth::stages8());
        let mut h = FlowHistory::new();
        // One burst of 8 issued at cycle 0, nothing after.
        h.record(8, 8, 8);
        let mut occ = Vec::new();
        for expect_stage in ["issue0", "regread0", "execute0", "mem0", "writeback0"] {
            groups.occupancies(&h, &mut occ);
            let idx = groups
                .specs()
                .iter()
                .position(|s| s.name == expect_stage)
                .unwrap();
            assert_eq!(
                occ[idx], 8,
                "burst should be at {expect_stage} now: {occ:?}"
            );
            h.record(0, 0, 0);
        }
        // Burst has drained past writeback.
        groups.occupancies(&h, &mut occ);
        assert!(occ[4..].iter().all(|&o| o == 0));
    }

    fn sample_activity(cycle: u64, groups: usize) -> CycleActivity {
        let mut a = CycleActivity {
            cycle,
            fetched: 3,
            renamed: 2,
            issued: 4,
            committed: (cycle % 5) as u32,
            dcache_port_mask: if cycle.is_multiple_of(2) { 0b11 } else { 0 },
            icache_access: cycle.is_multiple_of(3),
            icache_miss: cycle.is_multiple_of(7),
            result_bus_used: (cycle % 3) as u32,
            ..CycleActivity::default()
        };
        a.fu_active[FuClass::IntAlu.index()] = (cycle as u32) & 0xf;
        a.latch_occupancy = (0..groups)
            .map(|g| ((cycle as usize + g) % 4) as u32)
            .collect();
        if cycle.is_multiple_of(4) {
            a.grants.push(FuGrant {
                class: FuClass::FpAlu,
                instance: (cycle % 2) as usize,
                exec_start: 2,
                active_len: 3,
            });
        }
        a
    }

    #[test]
    fn block_push_extract_round_trips() {
        let groups = 8;
        let mut block = ActivityBlock::new(groups);
        let acts: Vec<CycleActivity> = (1..=BLOCK_CYCLES as u64)
            .map(|c| sample_activity(c, groups))
            .collect();
        for a in &acts {
            block.push(a);
        }
        assert_eq!(block.len(), BLOCK_CYCLES);
        let mut out = CycleActivity::default();
        for (i, a) in acts.iter().enumerate() {
            block.extract(i, &mut out);
            assert_eq!(&out, a, "cycle {}", a.cycle);
        }
        // Lane masks agree with the columns they summarize.
        for (i, a) in acts.iter().enumerate() {
            let bit = 1u64 << i;
            assert_eq!(block.port_any & bit != 0, block.dcache_port_mask[i] != 0);
            assert_eq!(block.bus_any & bit != 0, block.result_bus_used[i] != 0);
            assert_eq!(block.icache_access_lanes & bit != 0, a.icache_access);
            for c in 0..FuClass::COUNT {
                assert_eq!(block.fu_any[c] & bit != 0, block.fu_active[c][i] != 0);
            }
            for g in 0..groups {
                assert_eq!(block.latch_any[g] & bit != 0, block.latches(i)[g] != 0);
            }
        }
        // Clear keeps allocations but resets summaries.
        block.clear(100);
        assert!(block.is_empty());
        assert_eq!(block.port_any, 0);
        assert!(block.latch_any.iter().all(|&m| m == 0));
        block.push(&sample_activity(100, groups));
        assert_eq!(block.cycle(0), 100);
    }

    #[test]
    fn lane_range_masks() {
        assert_eq!(ActivityBlock::lane_range(0, 64), u64::MAX);
        assert_eq!(ActivityBlock::lane_range(0, 0), 0);
        assert_eq!(ActivityBlock::lane_range(64, 64), 0);
        assert_eq!(ActivityBlock::lane_range(1, 3), 0b110);
        assert_eq!(ActivityBlock::lane_range(63, 64), 1 << 63);
    }

    #[test]
    #[should_panic(expected = "non-consecutive")]
    fn block_rejects_cycle_gaps() {
        let mut block = ActivityBlock::new(2);
        block.push(&sample_activity(1, 2));
        block.push(&sample_activity(3, 2));
    }

    #[test]
    fn activity_reset_clears() {
        let mut a = CycleActivity {
            issued: 5,
            ..CycleActivity::default()
        };
        a.grants.push(FuGrant {
            class: FuClass::IntAlu,
            instance: 0,
            exec_start: 2,
            active_len: 1,
        });
        a.latch_occupancy.push(3);
        a.reset(42);
        assert_eq!(a.cycle, 42);
        assert_eq!(a.issued, 0);
        assert!(a.grants.is_empty());
        assert!(a.latch_occupancy.is_empty());
    }
}
