//! Per-cycle activity records and pipeline-latch geometry.
//!
//! [`CycleActivity`] is the contract between the simulator, the power model
//! and the clock-gating policies:
//!
//! * **usage counts** say what actually happened this cycle (for energy
//!   accounting and for verifying that a gating policy never gated a used
//!   block);
//! * **advance-knowledge signals** say what is *deterministically known* at
//!   the end of this cycle about near-future cycles (issue GRANTs, the
//!   one-hot issued-slot count, scheduled stores, booked result buses) —
//!   exactly the signals the paper's DCG controller taps (§3).

use dcg_isa::FuClass;

use crate::config::PipelineDepth;

/// Where a latch group's occupancy (and DCG gate control) comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowSource {
    /// Instructions fetched per cycle (front-end flow).
    Fetched,
    /// Instructions traversing rename per cycle (known from decode one
    /// cycle earlier — paper §2.2.1).
    Renamed,
    /// Instructions issued per cycle (the one-hot encoding of §3.2).
    Issued,
}

/// One pipeline-latch group (the latch bank at the end of one stage).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatchGroupSpec {
    /// Stage name, e.g. `"regread0"`.
    pub name: String,
    /// Which flow's count gives this group's occupancy.
    pub source: FlowSource,
    /// Occupancy at cycle `X` equals the source flow at `X - delay`.
    pub delay: u32,
    /// `true` if DCG can gate this group (paper Figure 3 tick marks:
    /// rename and all post-issue latches; fetch/decode/issue cannot be
    /// gated).
    pub gated: bool,
}

/// The ordered set of latch groups implied by a pipeline geometry.
///
/// # Example
///
/// ```
/// use dcg_sim::{LatchGroups, PipelineDepth};
///
/// let groups = LatchGroups::new(&PipelineDepth::stages8());
/// assert_eq!(groups.len(), 8);
/// // Paper Figure 3: rename + the four post-issue stages are gateable.
/// assert_eq!(groups.gated_count(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct LatchGroups {
    specs: Vec<LatchGroupSpec>,
}

impl LatchGroups {
    /// Derive the latch groups for `depth`.
    ///
    /// For the paper's 8-stage pipeline this yields 8 groups of which 5 are
    /// gateable (rename, regread, execute, memory, writeback).
    pub fn new(depth: &PipelineDepth) -> LatchGroups {
        let mut specs = Vec::with_capacity(depth.total());
        for i in 0..depth.fetch {
            specs.push(LatchGroupSpec {
                name: format!("fetch{i}"),
                source: FlowSource::Fetched,
                delay: i as u32,
                gated: false,
            });
        }
        for i in 0..depth.decode {
            specs.push(LatchGroupSpec {
                name: format!("decode{i}"),
                source: FlowSource::Fetched,
                delay: (depth.fetch + i) as u32,
                gated: false,
            });
        }
        for i in 0..depth.rename {
            specs.push(LatchGroupSpec {
                name: format!("rename{i}"),
                source: FlowSource::Renamed,
                delay: i as u32,
                gated: true,
            });
        }
        for i in 0..depth.issue {
            specs.push(LatchGroupSpec {
                name: format!("issue{i}"),
                source: FlowSource::Issued,
                delay: 0,
                gated: false,
            });
        }
        let mut back_delay = 1u32;
        for (stage, count) in [
            ("regread", depth.regread),
            ("execute", depth.execute),
            ("mem", depth.mem),
            ("writeback", depth.writeback),
        ] {
            for i in 0..count {
                specs.push(LatchGroupSpec {
                    name: format!("{stage}{i}"),
                    source: FlowSource::Issued,
                    delay: back_delay,
                    gated: true,
                });
                back_delay += 1;
            }
        }
        LatchGroups { specs }
    }

    /// The group specifications, in pipeline order.
    pub fn specs(&self) -> &[LatchGroupSpec] {
        &self.specs
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// `true` if there are no groups (never happens for valid geometries).
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Number of gateable groups.
    pub fn gated_count(&self) -> usize {
        self.specs.iter().filter(|s| s.gated).count()
    }

    /// Maximum delay used by any group (history depth requirement).
    pub fn max_delay(&self) -> u32 {
        self.specs.iter().map(|s| s.delay).max().unwrap_or(0)
    }

    /// Compute per-group occupancy from a flow history.
    pub fn occupancies(&self, history: &FlowHistory, out: &mut Vec<u32>) {
        out.clear();
        out.extend(self.specs.iter().map(|s| history.get(s.source, s.delay)));
    }
}

/// Ring-buffer history of the three per-cycle flows that determine latch
/// occupancy.
#[derive(Debug, Clone)]
pub struct FlowHistory {
    fetched: [u32; Self::DEPTH],
    renamed: [u32; Self::DEPTH],
    issued: [u32; Self::DEPTH],
    pos: usize,
}

impl FlowHistory {
    /// History depth in cycles; comfortably exceeds any latch delay.
    pub const DEPTH: usize = 32;

    /// A history with all flows zero.
    pub fn new() -> FlowHistory {
        FlowHistory {
            fetched: [0; Self::DEPTH],
            renamed: [0; Self::DEPTH],
            issued: [0; Self::DEPTH],
            pos: 0,
        }
    }

    /// Record this cycle's flows (call once per cycle).
    pub fn record(&mut self, fetched: u32, renamed: u32, issued: u32) {
        self.pos = (self.pos + 1) % Self::DEPTH;
        self.fetched[self.pos] = fetched;
        self.renamed[self.pos] = renamed;
        self.issued[self.pos] = issued;
    }

    /// Flow value `delay` cycles ago (0 = the cycle just recorded).
    pub fn get(&self, source: FlowSource, delay: u32) -> u32 {
        let d = delay as usize % Self::DEPTH;
        let idx = (self.pos + Self::DEPTH - d) % Self::DEPTH;
        match source {
            FlowSource::Fetched => self.fetched[idx],
            FlowSource::Renamed => self.renamed[idx],
            FlowSource::Issued => self.issued[idx],
        }
    }
}

impl Default for FlowHistory {
    fn default() -> Self {
        Self::new()
    }
}

/// One issue-stage GRANT: the selection logic matched an instruction to an
/// execution-unit instance (paper Figure 4), fixing that instance's future
/// activity deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuGrant {
    /// Unit class granted.
    pub class: FuClass,
    /// Instance within the class.
    pub instance: usize,
    /// Cycles from now until the instance becomes active (2 for the
    /// 8-stage pipeline's execute stage; 3 for a load's D-cache access).
    pub exec_start: u32,
    /// Cycles the instance stays active (op latency; 1 for cache ports).
    pub active_len: u32,
}

/// Everything that happened in (and is deterministically known at the end
/// of) one simulated cycle.
///
/// This record is the complete interface between the timing simulation and
/// everything downstream (power accounting, gating policies, statistics):
/// a recorded stream of `CycleActivity` replays bit-identically through
/// any passive policy. The `dcg-trace` activity frame serializes every
/// field; adding, removing or re-meaning a field requires bumping that
/// format's schema constant so stale cached traces are invalidated.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CycleActivity {
    /// Cycle number.
    pub cycle: u64,
    // ---- flows ----
    /// Instructions fetched.
    pub fetched: u32,
    /// Instructions entering rename.
    pub renamed: u32,
    /// Instructions dispatched into the window.
    pub dispatched: u32,
    /// Instructions issued (selected).
    pub issued: u32,
    /// Issued floating-point operations.
    pub issued_fp: u32,
    /// Issued loads.
    pub issued_loads: u32,
    /// Issued stores.
    pub issued_stores: u32,
    /// Instructions committed.
    pub committed: u32,
    // ---- usage (this cycle) ----
    /// Busy mask per unit class (bit *i* = instance *i* active), indexed by
    /// [`FuClass::index`].
    pub fu_active: [u32; FuClass::COUNT],
    /// D-cache port mask in use this cycle (wordline decoders firing).
    pub dcache_port_mask: u32,
    /// Loads accessing the D-cache this cycle.
    pub dcache_load_accesses: u32,
    /// Stores accessing the D-cache this cycle.
    pub dcache_store_accesses: u32,
    /// D-cache accesses that missed (this cycle's accesses).
    pub dcache_misses: u32,
    /// L2 accesses initiated this cycle.
    pub l2_accesses: u32,
    /// I-cache probed this cycle.
    pub icache_access: bool,
    /// The I-cache probe missed.
    pub icache_miss: bool,
    /// Branch-predictor lookups.
    pub bpred_lookups: u32,
    /// Branch-predictor lookups that mispredicted this cycle.
    pub bpred_mispredicts: u32,
    /// Register-file read ports used (issued source operands).
    pub regfile_reads: u32,
    /// Register-file write ports used (writebacks).
    pub regfile_writes: u32,
    /// Result buses driven this cycle.
    pub result_bus_used: u32,
    /// Per-latch-group slots written this cycle (indexed like
    /// [`LatchGroups::specs`]).
    pub latch_occupancy: Vec<u32>,
    // ---- advance knowledge (known at end of this cycle) ----
    /// Issue-stage grants made this cycle (future unit activity).
    pub grants: Vec<FuGrant>,
    /// Instructions sitting at the end of decode that will traverse rename
    /// next cycle (paper §2.2.1: the rename latch's gate control is known
    /// from the decode stage one cycle ahead). The actual rename flow next
    /// cycle is at most this (zero if rename stalls).
    pub decode_ready_next: u32,
    /// Issue-queue entries occupied at the end of this cycle. Entries
    /// beyond `iq_occupancy + dispatch width` are deterministically empty
    /// next cycle — the signal behind the deterministic issue-queue gating
    /// of \[6\], which the paper cites in §2.2.2.
    pub iq_occupancy: u32,
    /// Reorder-buffer entries occupied at the end of this cycle (window
    /// fill level; feeds the occupancy histograms of the metrics layer).
    pub rob_occupancy: u32,
    /// Load/store-queue entries occupied at the end of this cycle.
    pub lsq_occupancy: u32,
    /// Store D-cache accesses already scheduled for the *next* cycle
    /// (paper §3.3 advance knowledge), as (port, count) mask.
    pub store_ports_next: u32,
    /// Result buses already booked for cycle `cycle + 2` (paper §3.4:
    /// writeback usage is known two cycles ahead).
    pub result_bus_in_2: u32,
}

impl CycleActivity {
    /// Reset all fields for reuse (keeps allocations).
    pub fn reset(&mut self, cycle: u64) {
        let mut grants = std::mem::take(&mut self.grants);
        let mut latches = std::mem::take(&mut self.latch_occupancy);
        grants.clear();
        latches.clear();
        *self = CycleActivity {
            cycle,
            latch_occupancy: latches,
            grants,
            ..CycleActivity::default()
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_stage_groups_match_paper_figure_3() {
        let g = LatchGroups::new(&PipelineDepth::stages8());
        assert_eq!(g.len(), 8);
        assert_eq!(g.gated_count(), 5, "rename + rf/ex/mem/wb are gateable");
        let names: Vec<&str> = g.specs().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "fetch0",
                "decode0",
                "rename0",
                "issue0",
                "regread0",
                "execute0",
                "mem0",
                "writeback0"
            ]
        );
        // Fetch/decode/issue latches cannot be gated (paper §2.2.1).
        for s in g.specs() {
            let front = s.name.starts_with("fetch")
                || s.name.starts_with("decode")
                || s.name.starts_with("issue");
            assert_eq!(s.gated, !front, "{}", s.name);
        }
    }

    #[test]
    fn twenty_stage_groups_keep_gateable_majority() {
        let g = LatchGroups::new(&PipelineDepth::stages20());
        assert_eq!(g.len(), 20);
        assert_eq!(g.gated_count(), 12);
        assert!(g.max_delay() < FlowHistory::DEPTH as u32);
    }

    #[test]
    fn backend_delays_are_consecutive() {
        let g = LatchGroups::new(&PipelineDepth::stages8());
        let backend: Vec<u32> = g
            .specs()
            .iter()
            .filter(|s| s.source == FlowSource::Issued && s.gated)
            .map(|s| s.delay)
            .collect();
        assert_eq!(backend, vec![1, 2, 3, 4]);
    }

    #[test]
    fn flow_history_lookup() {
        let mut h = FlowHistory::new();
        h.record(8, 6, 4); // cycle 0
        h.record(7, 5, 3); // cycle 1
        assert_eq!(h.get(FlowSource::Fetched, 0), 7);
        assert_eq!(h.get(FlowSource::Fetched, 1), 8);
        assert_eq!(h.get(FlowSource::Renamed, 0), 5);
        assert_eq!(h.get(FlowSource::Issued, 1), 4);
        assert_eq!(h.get(FlowSource::Issued, 5), 0, "pre-history is zero");
    }

    #[test]
    fn occupancies_follow_delays() {
        let groups = LatchGroups::new(&PipelineDepth::stages8());
        let mut h = FlowHistory::new();
        // One burst of 8 issued at cycle 0, nothing after.
        h.record(8, 8, 8);
        let mut occ = Vec::new();
        for expect_stage in ["issue0", "regread0", "execute0", "mem0", "writeback0"] {
            groups.occupancies(&h, &mut occ);
            let idx = groups
                .specs()
                .iter()
                .position(|s| s.name == expect_stage)
                .unwrap();
            assert_eq!(
                occ[idx], 8,
                "burst should be at {expect_stage} now: {occ:?}"
            );
            h.record(0, 0, 0);
        }
        // Burst has drained past writeback.
        groups.occupancies(&h, &mut occ);
        assert!(occ[4..].iter().all(|&o| o == 0));
    }

    #[test]
    fn activity_reset_clears() {
        let mut a = CycleActivity {
            issued: 5,
            ..CycleActivity::default()
        };
        a.grants.push(FuGrant {
            class: FuClass::IntAlu,
            instance: 0,
            exec_start: 2,
            active_len: 1,
        });
        a.latch_occupancy.push(3);
        a.reset(42);
        assert_eq!(a.cycle, 42);
        assert_eq!(a.issued, 0);
        assert!(a.grants.is_empty());
        assert!(a.latch_occupancy.is_empty());
    }
}
