//! Ergonomic, validating construction of [`SimConfig`] variants.
//!
//! Experiments tweak a handful of knobs off the Table-1 baseline; the
//! builder makes those one-liners and funnels every variant through
//! [`SimConfig::validate`] so a bad sweep point fails at construction, not
//! ten thousand cycles into a simulation.

use crate::config::{PipelineDepth, PredictorKind, SimConfig, StoreTiming};

/// Builder for [`SimConfig`], seeded from the Table-1 baseline.
///
/// # Example
///
/// ```
/// use dcg_sim::{SimConfig, StoreTiming};
///
/// # fn main() -> Result<(), String> {
/// let cfg = SimConfig::builder()
///     .int_alus(4)
///     .issue_width(8)
///     .store_timing(StoreTiming::DelayOneCycle)
///     .build()?;
/// assert_eq!(cfg.int_alus, 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    config: SimConfig,
}

impl SimConfigBuilder {
    /// Start from the Table-1 baseline.
    pub fn new() -> SimConfigBuilder {
        SimConfigBuilder {
            config: SimConfig::baseline_8wide(),
        }
    }

    /// Fetch, issue and commit widths together (a "machine width").
    pub fn width(mut self, w: usize) -> SimConfigBuilder {
        self.config.fetch_width = w;
        self.config.issue_width = w;
        self.config.commit_width = w;
        self.config.result_buses = w;
        self
    }

    /// Issue width alone.
    pub fn issue_width(mut self, w: usize) -> SimConfigBuilder {
        self.config.issue_width = w;
        self
    }

    /// Reorder-buffer (window) entries.
    pub fn rob_entries(mut self, n: usize) -> SimConfigBuilder {
        self.config.rob_entries = n;
        self
    }

    /// Issue-queue entries.
    pub fn iq_entries(mut self, n: usize) -> SimConfigBuilder {
        self.config.iq_entries = n;
        self
    }

    /// Load/store-queue entries.
    pub fn lsq_entries(mut self, n: usize) -> SimConfigBuilder {
        self.config.lsq_entries = n;
        self
    }

    /// Integer ALU count (§4.4 sweep knob).
    pub fn int_alus(mut self, n: usize) -> SimConfigBuilder {
        self.config.int_alus = n;
        self
    }

    /// FP ALU count.
    pub fn fp_alus(mut self, n: usize) -> SimConfigBuilder {
        self.config.fp_alus = n;
        self
    }

    /// D-cache port count.
    pub fn mem_ports(mut self, n: usize) -> SimConfigBuilder {
        self.config.mem_ports = n;
        self
    }

    /// Pipeline geometry (8- or 20-stage, or custom).
    pub fn depth(mut self, depth: PipelineDepth) -> SimConfigBuilder {
        self.config.depth = depth;
        self
    }

    /// Main-memory latency in cycles.
    pub fn mem_latency(mut self, cycles: u32) -> SimConfigBuilder {
        self.config.mem_latency = cycles;
        self
    }

    /// Store commit timing (paper §3.3).
    pub fn store_timing(mut self, timing: StoreTiming) -> SimConfigBuilder {
        self.config.store_timing = timing;
        self
    }

    /// Direction-predictor organisation.
    pub fn predictor(mut self, kind: PredictorKind) -> SimConfigBuilder {
        self.config.bpred.kind = kind;
        self
    }

    /// Next-line D-cache prefetcher (extension knob).
    pub fn dcache_prefetch(mut self, enabled: bool) -> SimConfigBuilder {
        self.config.dcache_next_line_prefetch = enabled;
        self
    }

    /// Validate and produce the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violated structural constraint (see
    /// [`SimConfig::validate`]).
    pub fn build(self) -> Result<SimConfig, String> {
        self.config.validate()?;
        Ok(self.config)
    }
}

impl Default for SimConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SimConfig {
    /// Start building a variant of the Table-1 baseline.
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_build_is_the_baseline() {
        let built = SimConfig::builder().build().expect("valid");
        assert_eq!(built, SimConfig::baseline_8wide());
    }

    #[test]
    fn knobs_apply() {
        let cfg = SimConfig::builder()
            .width(4)
            .rob_entries(64)
            .iq_entries(64)
            .lsq_entries(32)
            .int_alus(3)
            .fp_alus(2)
            .mem_ports(1)
            .mem_latency(200)
            .predictor(PredictorKind::Bimodal)
            .dcache_prefetch(true)
            .depth(PipelineDepth::stages20())
            .build()
            .expect("valid");
        assert_eq!(cfg.issue_width, 4);
        assert_eq!(cfg.result_buses, 4);
        assert_eq!(cfg.int_alus, 3);
        assert_eq!(cfg.mem_ports, 1);
        assert_eq!(cfg.mem_latency, 200);
        assert_eq!(cfg.bpred.kind, PredictorKind::Bimodal);
        assert!(cfg.dcache_next_line_prefetch);
        assert_eq!(cfg.depth.total(), 20);
    }

    #[test]
    fn invalid_combinations_fail_at_build() {
        assert!(SimConfig::builder().int_alus(0).build().is_err());
        assert!(SimConfig::builder().issue_width(0).build().is_err());
        assert!(SimConfig::builder().rob_entries(2).build().is_err());
    }
}
