//! Execution-unit pool: instance tracking, reservation and the paper's
//! sequential-priority selection policy.
//!
//! §3.1 of the paper: *"Among the execution units of the same type, we
//! statically assign priorities to the units, so that the higher-priority
//! units are always chosen to be used before the lower priority units"* —
//! this keeps low-priority units parked in the gated state and minimises
//! control toggling. A round-robin policy is provided for the ablation
//! bench.

use dcg_isa::FuClass;

use crate::config::SimConfig;

/// Per-instance occupancy over the next 64 cycles: bit `k` set means the
/// instance is busy at `now + k`. Shift once per simulated cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusyWindow(u64);

impl BusyWindow {
    /// `true` if the instance is busy in the current cycle.
    #[inline]
    pub fn busy_now(self) -> bool {
        self.0 & 1 != 0
    }

    /// `true` if the instance is busy at `now + offset`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `offset >= 64`.
    #[inline]
    pub fn busy_at(self, offset: u32) -> bool {
        debug_assert!(offset < 64);
        self.0 & (1u64 << offset) != 0
    }

    /// `true` if the span `[now+start, now+start+len)` is entirely free.
    #[inline]
    pub fn is_free_span(self, start: u32, len: u32) -> bool {
        debug_assert!(start + len <= 64, "span escapes the busy window");
        let mask = span_mask(start, len);
        self.0 & mask == 0
    }

    /// Mark the span `[now+start, now+start+len)` busy.
    #[inline]
    pub fn reserve_span(&mut self, start: u32, len: u32) {
        debug_assert!(self.is_free_span(start, len), "double reservation");
        self.0 |= span_mask(start, len);
    }

    /// Advance one cycle (everything moves one cycle closer).
    #[inline]
    pub fn advance(&mut self) {
        self.0 >>= 1;
    }
}

#[inline]
fn span_mask(start: u32, len: u32) -> u64 {
    debug_assert!(len >= 1 && start + len <= 64);
    (((1u128 << len) - 1) as u64) << start
}

/// Instance-selection policy within a unit class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FuSelectPolicy {
    /// Always pick the lowest-numbered free instance (paper §3.1) —
    /// low-numbered units stay hot, high-numbered units stay gated.
    #[default]
    SequentialPriority,
    /// Rotate the starting instance (ablation baseline: maximises toggling).
    RoundRobin,
}

#[derive(Debug)]
struct ClassPool {
    windows: Vec<BusyWindow>,
    enabled: usize,
    rr_next: usize,
}

/// Pool of all execution-unit instances, one sub-pool per [`FuClass`].
///
/// # Example
///
/// ```
/// use dcg_isa::FuClass;
/// use dcg_sim::{FuPool, FuSelectPolicy, SimConfig};
///
/// let cfg = SimConfig::baseline_8wide();
/// let mut pool = FuPool::new(&cfg, FuSelectPolicy::SequentialPriority);
/// // Issue two adds for execution two cycles out: sequential priority
/// // always picks the lowest-numbered free instances (paper §3.1).
/// assert_eq!(pool.try_reserve(FuClass::IntAlu, 2, 1), Some(0));
/// assert_eq!(pool.try_reserve(FuClass::IntAlu, 2, 1), Some(1));
/// ```
#[derive(Debug)]
pub struct FuPool {
    pools: Vec<ClassPool>,
    policy: FuSelectPolicy,
}

impl FuPool {
    /// Build the pool for `config` with the given selection policy.
    pub fn new(config: &SimConfig, policy: FuSelectPolicy) -> FuPool {
        let pools = FuClass::ALL
            .iter()
            .map(|c| ClassPool {
                windows: vec![BusyWindow::default(); config.fu_count(*c)],
                enabled: config.fu_count(*c),
                rr_next: 0,
            })
            .collect();
        FuPool { pools, policy }
    }

    /// Number of instances (enabled or not) of `class`.
    pub fn count(&self, class: FuClass) -> usize {
        self.pools[class.index()].windows.len()
    }

    /// Number of currently enabled instances of `class`.
    pub fn enabled(&self, class: FuClass) -> usize {
        self.pools[class.index()].enabled
    }

    /// Enable only the first `n` instances of `class` (PLB low-power modes
    /// disable the highest-numbered instances). `n` is clamped to the
    /// instance count.
    pub fn set_enabled(&mut self, class: FuClass, n: usize) {
        let pool = &mut self.pools[class.index()];
        pool.enabled = n.min(pool.windows.len());
    }

    /// Advance all busy windows one cycle.
    pub fn advance(&mut self) {
        for pool in &mut self.pools {
            for w in &mut pool.windows {
                w.advance();
            }
        }
    }

    /// Try to reserve an instance of `class` for the span
    /// `[now+start, now+start+occupy)`; returns the chosen instance index.
    pub fn try_reserve(&mut self, class: FuClass, start: u32, occupy: u32) -> Option<usize> {
        let pool = &mut self.pools[class.index()];
        let n = pool.enabled;
        if n == 0 {
            return None;
        }
        let pick = match self.policy {
            FuSelectPolicy::SequentialPriority => {
                (0..n).find(|&i| pool.windows[i].is_free_span(start, occupy))
            }
            FuSelectPolicy::RoundRobin => {
                let found = (0..n)
                    .map(|k| (pool.rr_next + k) % n)
                    .find(|&i| pool.windows[i].is_free_span(start, occupy));
                if let Some(i) = found {
                    pool.rr_next = (i + 1) % n;
                }
                found
            }
        };
        if let Some(i) = pick {
            pool.windows[i].reserve_span(start, occupy);
        }
        pick
    }

    /// Reserve a *specific* instance at `now + offset` for one cycle,
    /// returning `false` if it is already busy (used by committed stores
    /// grabbing a D-cache port).
    pub fn reserve_exact(&mut self, class: FuClass, index: usize, offset: u32) -> bool {
        let pool = &mut self.pools[class.index()];
        let w = &mut pool.windows[index];
        if w.is_free_span(offset, 1) {
            w.reserve_span(offset, 1);
            true
        } else {
            false
        }
    }

    /// Find any enabled instance of `class` free at `now + offset` and
    /// reserve it for one cycle.
    pub fn reserve_any_at(&mut self, class: FuClass, offset: u32) -> Option<usize> {
        let pool = &mut self.pools[class.index()];
        let n = pool.enabled;
        let pick = (0..n).find(|&i| pool.windows[i].is_free_span(offset, 1))?;
        pool.windows[pick].reserve_span(offset, 1);
        Some(pick)
    }

    /// Bitmask of instances of `class` busy in the current cycle.
    pub fn busy_mask_now(&self, class: FuClass) -> u32 {
        let pool = &self.pools[class.index()];
        pool.windows
            .iter()
            .enumerate()
            .filter(|(_, w)| w.busy_now())
            .fold(0u32, |m, (i, _)| m | (1 << i))
    }

    /// Bitmask of instances of `class` busy at `now + offset`.
    pub fn busy_mask_at(&self, class: FuClass, offset: u32) -> u32 {
        let pool = &self.pools[class.index()];
        pool.windows
            .iter()
            .enumerate()
            .filter(|(_, w)| w.busy_at(offset))
            .fold(0u32, |m, (i, _)| m | (1 << i))
    }
}

/// Tracks which unit instances are *active* (holding an operation in any
/// internal pipe stage) each cycle.
///
/// Distinct from [`FuPool`] reservation: a pipelined FPU accepts a new op
/// every cycle (initiation interval 1) but each op keeps the unit's logic
/// switching for its full latency — the unit is only gateable in cycles
/// where *no* op is in flight. This tracker is the ground truth the DCG
/// invariant checks against.
#[derive(Debug)]
pub struct ActiveTracker {
    windows: Vec<Vec<BusyWindow>>,
}

impl ActiveTracker {
    /// Build the tracker for `config`.
    pub fn new(config: &SimConfig) -> ActiveTracker {
        ActiveTracker {
            windows: FuClass::ALL
                .iter()
                .map(|c| vec![BusyWindow::default(); config.fu_count(*c)])
                .collect(),
        }
    }

    /// Mark instance `index` of `class` active over
    /// `[now+start, now+start+len)`. Overlapping marks merge.
    pub fn mark(&mut self, class: FuClass, index: usize, start: u32, len: u32) {
        let w = &mut self.windows[class.index()][index];
        // Merge rather than assert: overlapping ops on a pipelined unit are
        // legal and both keep the unit active.
        let mask = (((1u128 << len) - 1) as u64) << start;
        *w = BusyWindow(w.0 | mask);
    }

    /// Advance one cycle.
    pub fn advance(&mut self) {
        for class in &mut self.windows {
            for w in class {
                w.advance();
            }
        }
    }

    /// Bitmask of instances of `class` active in the current cycle.
    pub fn mask_now(&self, class: FuClass) -> u32 {
        self.windows[class.index()]
            .iter()
            .enumerate()
            .filter(|(_, w)| w.busy_now())
            .fold(0u32, |m, (i, _)| m | (1 << i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    fn pool(policy: FuSelectPolicy) -> FuPool {
        FuPool::new(&SimConfig::baseline_8wide(), policy)
    }

    #[test]
    fn busy_window_span_logic() {
        let mut w = BusyWindow::default();
        assert!(w.is_free_span(2, 3));
        w.reserve_span(2, 3);
        assert!(!w.busy_now());
        assert!(w.busy_at(2) && w.busy_at(4));
        assert!(!w.busy_at(5));
        assert!(!w.is_free_span(4, 1));
        assert!(w.is_free_span(5, 10));
        w.advance();
        assert!(w.busy_at(1) && w.busy_at(3) && !w.busy_at(4));
        w.advance();
        assert!(w.busy_now());
    }

    #[test]
    fn sequential_priority_prefers_low_indices() {
        let mut p = pool(FuSelectPolicy::SequentialPriority);
        // Two simultaneous int-alu reservations must take instances 0, 1.
        assert_eq!(p.try_reserve(FuClass::IntAlu, 2, 1), Some(0));
        assert_eq!(p.try_reserve(FuClass::IntAlu, 2, 1), Some(1));
        // Next cycle (advance) the same instances are preferred again.
        p.advance();
        assert_eq!(p.try_reserve(FuClass::IntAlu, 2, 1), Some(0));
    }

    #[test]
    fn round_robin_rotates() {
        let mut p = pool(FuSelectPolicy::RoundRobin);
        let a = p.try_reserve(FuClass::IntAlu, 2, 1).unwrap();
        p.advance();
        let b = p.try_reserve(FuClass::IntAlu, 2, 1).unwrap();
        assert_ne!(a, b, "round robin must rotate instances across cycles");
    }

    #[test]
    fn exhausting_a_class_returns_none() {
        let mut p = pool(FuSelectPolicy::SequentialPriority);
        for i in 0..2 {
            assert_eq!(p.try_reserve(FuClass::IntMulDiv, 2, 1), Some(i));
        }
        assert_eq!(p.try_reserve(FuClass::IntMulDiv, 2, 1), None);
    }

    #[test]
    fn unpipelined_occupancy_blocks_reissue() {
        let mut p = pool(FuSelectPolicy::SequentialPriority);
        // A 20-cycle divide occupies instance 0 for 20 cycles.
        assert_eq!(p.try_reserve(FuClass::IntMulDiv, 2, 20), Some(0));
        // A second divide goes to instance 1; a third has no instance.
        assert_eq!(p.try_reserve(FuClass::IntMulDiv, 2, 20), Some(1));
        assert_eq!(p.try_reserve(FuClass::IntMulDiv, 2, 20), None);
        // 10 cycles later both are still busy.
        for _ in 0..10 {
            p.advance();
        }
        assert_eq!(p.try_reserve(FuClass::IntMulDiv, 0, 1), None);
        // After the full latency they free up.
        for _ in 0..12 {
            p.advance();
        }
        assert_eq!(p.try_reserve(FuClass::IntMulDiv, 0, 1), Some(0));
    }

    #[test]
    fn disabling_instances_limits_selection() {
        let mut p = pool(FuSelectPolicy::SequentialPriority);
        p.set_enabled(FuClass::IntAlu, 3); // PLB 4-wide mode: 6 -> 3 ALUs
        assert_eq!(p.enabled(FuClass::IntAlu), 3);
        for i in 0..3 {
            assert_eq!(p.try_reserve(FuClass::IntAlu, 2, 1), Some(i));
        }
        assert_eq!(p.try_reserve(FuClass::IntAlu, 2, 1), None);
        // Re-enabling restores capacity.
        p.set_enabled(FuClass::IntAlu, 6);
        assert_eq!(p.try_reserve(FuClass::IntAlu, 2, 1), Some(3));
    }

    #[test]
    fn busy_masks_track_reservations() {
        let mut p = pool(FuSelectPolicy::SequentialPriority);
        p.try_reserve(FuClass::FpAlu, 1, 2);
        assert_eq!(p.busy_mask_now(FuClass::FpAlu), 0);
        assert_eq!(p.busy_mask_at(FuClass::FpAlu, 1), 0b1);
        p.advance();
        assert_eq!(p.busy_mask_now(FuClass::FpAlu), 0b1);
        p.advance();
        assert_eq!(p.busy_mask_now(FuClass::FpAlu), 0b1);
        p.advance();
        assert_eq!(p.busy_mask_now(FuClass::FpAlu), 0);
    }

    #[test]
    fn exact_and_any_port_reservation() {
        let mut p = pool(FuSelectPolicy::SequentialPriority);
        assert!(p.reserve_exact(FuClass::MemPort, 0, 1));
        assert!(!p.reserve_exact(FuClass::MemPort, 0, 1), "double booking");
        assert_eq!(p.reserve_any_at(FuClass::MemPort, 1), Some(1));
        assert_eq!(p.reserve_any_at(FuClass::MemPort, 1), None);
        assert_eq!(p.busy_mask_at(FuClass::MemPort, 1), 0b11);
    }
}
