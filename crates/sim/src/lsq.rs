//! Load/store queue (64 entries in Table 1): program-order tracking of
//! in-flight memory operations, store-to-load forwarding and conservative
//! same-word conflict detection.
//!
//! Because the workload is trace-like, every memory operation's effective
//! address is known at dispatch; the timing consequences of dependences
//! remain (a load behind an unexecuted same-word store must wait for it).

use std::collections::VecDeque;

use crate::rob::InstId;

/// What a load should do about older stores in the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadDisposition {
    /// No older store overlaps: access the D-cache.
    AccessCache,
    /// An older store to the same word has executed: forward from the LSQ.
    Forward,
    /// An older store to the same word has not yet executed: the load must
    /// wait (re-attempt selection in a later cycle).
    WaitForStore(InstId),
}

#[derive(Debug, Clone, Copy)]
struct LsqEntry {
    id: InstId,
    is_store: bool,
    /// 8-byte-aligned word address (conflicts detected at word granularity).
    word: u64,
    executed: bool,
}

/// The load/store queue.
///
/// # Example
///
/// ```
/// use dcg_isa::{Inst, MemRef};
/// use dcg_sim::{LoadDisposition, Lsq, Rob};
///
/// let mut rob = Rob::new(8);
/// let mut lsq = Lsq::new(8);
/// let st = rob.push(Inst::store(0, MemRef::new(0x100, 8))).unwrap();
/// let ld = rob.push(Inst::load(4, MemRef::new(0x100, 8))).unwrap();
/// lsq.push(st, true, 0x100);
/// lsq.push(ld, false, 0x100);
/// // The load must wait until the same-word store executes, then forward.
/// assert_eq!(lsq.load_disposition(ld, 0x100), LoadDisposition::WaitForStore(st));
/// lsq.mark_executed(st);
/// assert_eq!(lsq.load_disposition(ld, 0x100), LoadDisposition::Forward);
/// ```
#[derive(Debug)]
pub struct Lsq {
    entries: VecDeque<LsqEntry>,
    capacity: usize,
}

impl Lsq {
    /// An empty queue with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Lsq {
        assert!(capacity > 0, "LSQ capacity must be positive");
        Lsq {
            entries: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Occupied entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no memory operation is in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` when no slot is free.
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append a memory operation at dispatch (program order).
    ///
    /// Returns `false` when full.
    pub fn push(&mut self, id: InstId, is_store: bool, addr: u64) -> bool {
        if self.is_full() {
            return false;
        }
        self.entries.push_back(LsqEntry {
            id,
            is_store,
            word: addr >> 3,
            executed: false,
        });
        true
    }

    /// Decide how the load `id` (at `addr`) interacts with older stores.
    pub fn load_disposition(&self, id: InstId, addr: u64) -> LoadDisposition {
        let word = addr >> 3;
        // Newest older store to the same word wins.
        let mut result = LoadDisposition::AccessCache;
        for e in &self.entries {
            if e.id.seq() >= id.seq() {
                break;
            }
            if e.is_store && e.word == word {
                result = if e.executed {
                    LoadDisposition::Forward
                } else {
                    LoadDisposition::WaitForStore(e.id)
                };
            }
        }
        result
    }

    /// Mark a memory operation as executed (address generated, store data
    /// available for forwarding).
    pub fn mark_executed(&mut self, id: InstId) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.id == id) {
            e.executed = true;
        }
    }

    /// Remove a memory operation (at commit).
    pub fn remove(&mut self, id: InstId) {
        if let Some(pos) = self.entries.iter().position(|e| e.id == id) {
            self.entries.remove(pos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rob::Rob;
    use dcg_isa::{Inst, MemRef};

    fn mem_ids(n: usize) -> (Rob, Vec<InstId>) {
        let mut rob = Rob::new(n.max(1));
        let v = (0..n)
            .map(|k| {
                rob.push(Inst::load(k as u64 * 4, MemRef::new(0x100, 8)))
                    .unwrap()
            })
            .collect();
        (rob, v)
    }

    #[test]
    fn capacity_enforced() {
        let (_rob, ids) = mem_ids(3);
        let mut lsq = Lsq::new(2);
        assert!(lsq.push(ids[0], false, 0x100));
        assert!(lsq.push(ids[1], true, 0x108));
        assert!(lsq.is_full());
        assert!(!lsq.push(ids[2], false, 0x110));
    }

    #[test]
    fn load_with_no_older_store_accesses_cache() {
        let (_rob, ids) = mem_ids(2);
        let mut lsq = Lsq::new(8);
        lsq.push(ids[0], false, 0x100);
        lsq.push(ids[1], false, 0x100);
        assert_eq!(
            lsq.load_disposition(ids[1], 0x100),
            LoadDisposition::AccessCache
        );
    }

    #[test]
    fn load_waits_for_unexecuted_same_word_store() {
        let (_rob, ids) = mem_ids(2);
        let mut lsq = Lsq::new(8);
        lsq.push(ids[0], true, 0x200);
        lsq.push(ids[1], false, 0x204); // same 8-byte word as 0x200
        assert_eq!(
            lsq.load_disposition(ids[1], 0x204),
            LoadDisposition::WaitForStore(ids[0])
        );
        lsq.mark_executed(ids[0]);
        assert_eq!(
            lsq.load_disposition(ids[1], 0x204),
            LoadDisposition::Forward
        );
    }

    #[test]
    fn different_word_store_does_not_block() {
        let (_rob, ids) = mem_ids(2);
        let mut lsq = Lsq::new(8);
        lsq.push(ids[0], true, 0x200);
        lsq.push(ids[1], false, 0x208);
        assert_eq!(
            lsq.load_disposition(ids[1], 0x208),
            LoadDisposition::AccessCache
        );
    }

    #[test]
    fn newest_older_store_wins() {
        let (_rob, ids) = mem_ids(3);
        let mut lsq = Lsq::new(8);
        lsq.push(ids[0], true, 0x300);
        lsq.push(ids[1], true, 0x300);
        lsq.push(ids[2], false, 0x300);
        lsq.mark_executed(ids[0]);
        // The *newest* older store (ids[1]) is unexecuted, so wait on it.
        assert_eq!(
            lsq.load_disposition(ids[2], 0x300),
            LoadDisposition::WaitForStore(ids[1])
        );
    }

    #[test]
    fn younger_stores_are_ignored() {
        let (_rob, ids) = mem_ids(2);
        let mut lsq = Lsq::new(8);
        lsq.push(ids[0], false, 0x400); // load (older)
        lsq.push(ids[1], true, 0x400); // store (younger)
        assert_eq!(
            lsq.load_disposition(ids[0], 0x400),
            LoadDisposition::AccessCache
        );
    }

    #[test]
    fn remove_frees_space() {
        let (_rob, ids) = mem_ids(2);
        let mut lsq = Lsq::new(1);
        lsq.push(ids[0], true, 0x100);
        assert!(lsq.is_full());
        lsq.remove(ids[0]);
        assert!(lsq.is_empty());
        assert!(lsq.push(ids[1], false, 0x108));
    }
}
