//! # dcg-sim — cycle-accurate out-of-order superscalar simulator
//!
//! The execution substrate for the DCG reproduction: an 8-wide, 128-entry
//! window, out-of-order processor matching Table 1 of *"Deterministic Clock
//! Gating for Microprocessor Power Reduction"* (HPCA 2003), standing in for
//! the paper's Wattch/SimpleScalar `sim-outorder` baseline.
//!
//! The simulator's job in this reproduction is to produce faithful
//! **per-cycle activity** ([`CycleActivity`]): which execution units,
//! D-cache ports, pipeline-latch slots and result buses are used each
//! cycle, plus the *advance-knowledge* signals (issue GRANTs, one-hot
//! issued counts, scheduled stores, booked result buses) that the paper's
//! deterministic clock-gating controller taps.
//!
//! ## Quick start
//!
//! ```
//! use dcg_sim::{Processor, SimConfig};
//! use dcg_workloads::{Spec2000, SyntheticWorkload};
//!
//! let workload = SyntheticWorkload::new(Spec2000::by_name("bzip2").unwrap(), 7);
//! let mut cpu = Processor::new(SimConfig::baseline_8wide(), workload);
//! cpu.run_until_commits(10_000, |_activity| {});
//! println!("IPC = {:.2}", cpu.stats().ipc());
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod activity;
mod bpred;
mod builder;
mod cache;
mod config;
mod constraint;
mod fu;
mod iq;
mod lsq;
mod pipeline;
mod rob;
mod stats;

pub use activity::{
    ActivityBlock, CycleActivity, FlowHistory, FlowSource, FuGrant, LatchGroupSpec, LatchGroups,
    BLOCK_CYCLES,
};
pub use bpred::{BranchPredictor, Prediction};
pub use builder::SimConfigBuilder;
pub use cache::{AccessOutcome, CacheArray, CacheHierarchy, LookupResult};
pub use config::{
    BpredConfig, CacheConfig, FuSpec, PipelineDepth, PredictorKind, SimConfig, StoreTiming,
};
pub use constraint::ResourceConstraints;
pub use fu::{ActiveTracker, BusyWindow, FuPool, FuSelectPolicy};
pub use iq::IssueQueue;
pub use lsq::{LoadDisposition, Lsq};
pub use pipeline::Processor;
pub use rob::{InFlight, InstId, Rob};
pub use stats::SimStats;
