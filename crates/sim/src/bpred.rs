//! Branch prediction: 2-level direction predictor + BTB + return-address
//! stack, per Table 1 (8192-entry tables, 4-way 8192-entry BTB, 32-entry
//! RAS).
//!
//! The direction predictor is gshare-style: a global history register XORed
//! with the branch PC indexes a pattern-history table of 2-bit saturating
//! counters. The simulator is trace-driven, so tables are updated with the
//! *actual* outcome at prediction time (a standard trace-driven
//! simplification; it slightly flatters accuracy uniformly across all
//! configurations, so comparisons are unaffected).

use dcg_isa::{BranchInfo, BranchKind};

use crate::config::{BpredConfig, PredictorKind};

/// Outcome of predicting one branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted direction.
    pub taken: bool,
    /// Predicted target (`None` when taken is predicted but the BTB/RAS has
    /// no target — treated as a misprediction by the front end).
    pub target: Option<u64>,
}

/// 2-bit saturating counter.
#[derive(Debug, Clone, Copy, Default)]
struct Counter2(u8);

impl Counter2 {
    fn predict_taken(self) -> bool {
        self.0 >= 2
    }

    fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct BtbEntry {
    valid: bool,
    tag: u64,
    target: u64,
    lru: u64,
}

/// The complete front-end branch predictor.
///
/// # Example
///
/// ```
/// use dcg_isa::BranchInfo;
/// use dcg_sim::{BranchPredictor, SimConfig};
///
/// let mut bp = BranchPredictor::new(&SimConfig::baseline_8wide().bpred);
/// // An always-taken branch becomes predictable once the 13-bit global
/// // history saturates and the counters train.
/// for _ in 0..20 {
///     bp.predict_and_update(0x100, BranchInfo::conditional(true, 0x40));
/// }
/// let (prediction, mispredicted) =
///     bp.predict_and_update(0x100, BranchInfo::conditional(true, 0x40));
/// assert!(prediction.taken && !mispredicted);
/// ```
#[derive(Debug)]
pub struct BranchPredictor {
    kind: PredictorKind,
    pht: Vec<Counter2>,
    history: u64,
    history_mask: u64,
    btb: Vec<BtbEntry>,
    btb_sets: usize,
    btb_ways: usize,
    ras: Vec<u64>,
    ras_cap: usize,
    tick: u64,
    lookups: u64,
    mispredicts: u64,
}

impl BranchPredictor {
    /// Build a predictor from Table 1 parameters.
    ///
    /// # Panics
    ///
    /// Panics if table sizes are zero or not powers of two.
    pub fn new(cfg: &BpredConfig) -> BranchPredictor {
        assert!(cfg.pht_entries.is_power_of_two(), "PHT size must be 2^k");
        assert!(cfg.btb_entries.is_power_of_two(), "BTB size must be 2^k");
        assert!(cfg.btb_ways > 0 && cfg.btb_entries >= cfg.btb_ways);
        let btb_sets = cfg.btb_entries / cfg.btb_ways;
        assert!(btb_sets.is_power_of_two(), "BTB sets must be 2^k");
        BranchPredictor {
            kind: cfg.kind,
            pht: vec![Counter2::default(); cfg.pht_entries],
            history: 0,
            history_mask: (1u64 << cfg.history_bits.min(63)) - 1,
            btb: vec![BtbEntry::default(); cfg.btb_entries],
            btb_sets,
            btb_ways: cfg.btb_ways,
            ras: Vec::with_capacity(cfg.ras_entries),
            ras_cap: cfg.ras_entries,
            tick: 0,
            lookups: 0,
            mispredicts: 0,
        }
    }

    fn pht_index(&self, pc: u64) -> usize {
        let hist = match self.kind {
            PredictorKind::TwoLevel => self.history,
            PredictorKind::Bimodal => 0,
        };
        (((pc >> 2) ^ hist) as usize) & (self.pht.len() - 1)
    }

    fn btb_set(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.btb_sets - 1)
    }

    fn btb_lookup(&self, pc: u64) -> Option<u64> {
        let set = self.btb_set(pc);
        let base = set * self.btb_ways;
        self.btb[base..base + self.btb_ways]
            .iter()
            .find(|e| e.valid && e.tag == pc)
            .map(|e| e.target)
    }

    fn btb_insert(&mut self, pc: u64, target: u64) {
        self.tick += 1;
        let set = self.btb_set(pc);
        let base = set * self.btb_ways;
        let ways = &mut self.btb[base..base + self.btb_ways];
        // Hit: refresh.
        if let Some(e) = ways.iter_mut().find(|e| e.valid && e.tag == pc) {
            e.target = target;
            e.lru = self.tick;
            return;
        }
        // Miss: fill invalid or evict LRU.
        let victim = ways
            .iter_mut()
            .min_by_key(|e| if e.valid { e.lru } else { 0 })
            .expect("ways is non-empty");
        *victim = BtbEntry {
            valid: true,
            tag: pc,
            target,
            lru: self.tick,
        };
    }

    /// Predict the branch at `pc` with resolved behaviour `actual`, update
    /// the tables, and report whether the front end mispredicted.
    ///
    /// Returns `(prediction, mispredicted)`.
    pub fn predict_and_update(&mut self, pc: u64, actual: BranchInfo) -> (Prediction, bool) {
        self.lookups += 1;
        let prediction = match actual.kind {
            BranchKind::Conditional => {
                let idx = self.pht_index(pc);
                let pred_taken = self.pht[idx].predict_taken();
                let target = if pred_taken {
                    self.btb_lookup(pc)
                } else {
                    None
                };
                // Update direction state with the actual outcome.
                self.pht[idx].update(actual.taken);
                self.history = ((self.history << 1) | u64::from(actual.taken)) & self.history_mask;
                Prediction {
                    taken: pred_taken,
                    target,
                }
            }
            BranchKind::Jump => Prediction {
                taken: true,
                target: self.btb_lookup(pc),
            },
            BranchKind::Call => {
                let p = Prediction {
                    taken: true,
                    target: self.btb_lookup(pc),
                };
                if self.ras.len() == self.ras_cap {
                    self.ras.remove(0);
                }
                self.ras.push(pc + 4);
                p
            }
            BranchKind::Return => Prediction {
                taken: true,
                target: self.ras.pop(),
            },
        };

        // Keep the BTB learning actual targets of taken branches
        // (returns use the RAS, not the BTB).
        if actual.taken && actual.kind != BranchKind::Return {
            self.btb_insert(pc, actual.target);
        }

        let mispredicted = if actual.taken {
            !prediction.taken || prediction.target != Some(actual.target)
        } else {
            prediction.taken && prediction.target.is_some()
        };
        if mispredicted {
            self.mispredicts += 1;
        }
        (prediction, mispredicted)
    }

    /// Lookups performed so far.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Mispredictions so far.
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts
    }

    /// Misprediction rate over all lookups (0 if no lookups yet).
    pub fn mispredict_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcg_isa::BranchInfo;

    fn predictor() -> BranchPredictor {
        BranchPredictor::new(&BpredConfig {
            kind: PredictorKind::TwoLevel,
            pht_entries: 8192,
            history_bits: 13,
            btb_entries: 8192,
            btb_ways: 4,
            ras_entries: 32,
        })
    }

    #[test]
    fn learns_always_taken_branch() {
        let mut p = predictor();
        let b = BranchInfo::conditional(true, 0x40);
        // Train.
        for _ in 0..16 {
            p.predict_and_update(0x100, b);
        }
        let before = p.mispredicts();
        for _ in 0..100 {
            let (_, miss) = p.predict_and_update(0x100, b);
            assert!(!miss, "trained always-taken branch must predict correctly");
        }
        assert_eq!(p.mispredicts(), before);
    }

    #[test]
    fn learns_loop_pattern() {
        // taken 7 times, not-taken once, repeated: the 13-bit history
        // disambiguates the loop exit perfectly after warm-up.
        let mut p = predictor();
        let run = |p: &mut BranchPredictor| {
            let mut misses = 0;
            for _ in 0..64 {
                for i in 0..8 {
                    let taken = i != 7;
                    let (_, m) = p.predict_and_update(0x200, BranchInfo::conditional(taken, 0x180));
                    misses += u64::from(m);
                }
            }
            misses
        };
        let warm = run(&mut p);
        let trained = run(&mut p);
        assert!(
            trained < warm / 4 + 8,
            "loop should become predictable: warm={warm} trained={trained}"
        );
        assert!(trained < 32, "trained misses: {trained}");
    }

    #[test]
    fn random_branch_mispredicts_often() {
        let mut p = predictor();
        // Deterministic pseudo-random outcomes.
        let mut x = 0x12345u64;
        let mut misses = 0;
        let n = 4096;
        for _ in 0..n {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let taken = (x >> 62) & 1 == 1;
            let (_, m) = p.predict_and_update(0x300, BranchInfo::conditional(taken, 0x80));
            misses += u64::from(m);
        }
        let rate = misses as f64 / f64::from(n);
        assert!(rate > 0.25, "random branch should mispredict often: {rate}");
    }

    #[test]
    fn ras_predicts_returns() {
        let mut p = predictor();
        // Call from 0x1000, return to 0x1004.
        let call = BranchInfo {
            kind: BranchKind::Call,
            taken: true,
            target: 0x5000,
        };
        let ret = BranchInfo {
            kind: BranchKind::Return,
            taken: true,
            target: 0x1004,
        };
        p.predict_and_update(0x1000, call);
        let (pred, miss) = p.predict_and_update(0x5008, ret);
        assert_eq!(pred.target, Some(0x1004));
        assert!(!miss, "RAS must predict a matched call/return pair");
    }

    #[test]
    fn ras_overflow_is_graceful() {
        let mut p = predictor();
        let call = BranchInfo {
            kind: BranchKind::Call,
            taken: true,
            target: 0x5000,
        };
        for i in 0..100 {
            p.predict_and_update(0x1000 + i * 4, call);
        }
        // Stack holds the 32 most recent; popping works without panic.
        let ret = BranchInfo {
            kind: BranchKind::Return,
            taken: true,
            target: 0x1000 + 99 * 4 + 4,
        };
        let (pred, miss) = p.predict_and_update(0x5008, ret);
        assert!(!miss);
        assert_eq!(pred.target, Some(0x1000 + 99 * 4 + 4));
    }

    #[test]
    fn jump_needs_btb_warmup() {
        let mut p = predictor();
        let j = BranchInfo {
            kind: BranchKind::Jump,
            taken: true,
            target: 0x9000,
        };
        let (_, first) = p.predict_and_update(0x2000, j);
        assert!(first, "cold jump has no BTB target");
        let (pred, second) = p.predict_and_update(0x2000, j);
        assert!(!second, "warm jump hits the BTB");
        assert_eq!(pred.target, Some(0x9000));
    }

    #[test]
    fn btb_conflict_eviction() {
        let mut p = predictor();
        let j = |t| BranchInfo {
            kind: BranchKind::Jump,
            taken: true,
            target: t,
        };
        // 5 jumps aliasing to the same 4-way set (pc differs by sets*4).
        let stride = (8192 / 4) * 4;
        for i in 0..5u64 {
            p.predict_and_update(0x4000 + i * stride as u64, j(0x100 + i));
        }
        // The least recently used (first) entry was evicted.
        let (_, miss) = p.predict_and_update(0x4000, j(0x100));
        assert!(miss, "evicted BTB entry must miss");
    }

    #[test]
    fn mispredict_rate_bounds() {
        let mut p = predictor();
        assert_eq!(p.mispredict_rate(), 0.0);
        p.predict_and_update(0, BranchInfo::conditional(true, 64));
        assert!(p.mispredict_rate() <= 1.0);
        assert_eq!(p.lookups(), 1);
    }

    #[test]
    fn bimodal_cannot_learn_patterns_two_level_can() {
        // An alternating branch is trivial for a history-based predictor
        // and hopeless for a bimodal counter stuck between states.
        let run = |kind: PredictorKind| {
            let mut p = BranchPredictor::new(&BpredConfig {
                kind,
                pht_entries: 8192,
                history_bits: 13,
                btb_entries: 8192,
                btb_ways: 4,
                ras_entries: 32,
            });
            let mut misses = 0u64;
            for k in 0..2048u64 {
                let taken = k % 2 == 0;
                let (_, m) = p.predict_and_update(0x400, BranchInfo::conditional(taken, 0x100));
                misses += u64::from(m);
            }
            misses
        };
        let two_level = run(PredictorKind::TwoLevel);
        let bimodal = run(PredictorKind::Bimodal);
        assert!(
            two_level < 64,
            "2-level must learn the alternation: {two_level} misses"
        );
        assert!(
            bimodal > 512,
            "bimodal cannot track alternation: {bimodal} misses"
        );
    }
}
