//! Issue queue: an age-ordered window with caller-supplied wakeup/select.
//!
//! The queue itself is policy-free: [`IssueQueue::select`] walks entries
//! oldest-first and lets the pipeline's grant closure decide whether each
//! entry can issue (operand readiness, unit availability, issue-width and
//! PLB constraints). Granted entries are removed; the rest stay. This is
//! the structure whose GRANT outputs the paper taps for DCG (§3.1).

use crate::rob::InstId;

/// Age-ordered issue queue of in-flight instruction handles.
///
/// # Example
///
/// ```
/// use dcg_isa::{Inst, OpClass};
/// use dcg_sim::{IssueQueue, Rob};
///
/// let mut rob = Rob::new(8);
/// let mut iq = IssueQueue::new(8);
/// for k in 0..3 {
///     iq.push(rob.push(Inst::alu(k * 4, OpClass::IntAlu)).unwrap());
/// }
/// // Grant everything ready (here: everything), oldest first.
/// let granted = iq.select(8, |_id| true);
/// assert_eq!(granted.len(), 3);
/// assert!(iq.is_empty());
/// ```
#[derive(Debug)]
pub struct IssueQueue {
    entries: Vec<InstId>,
    capacity: usize,
}

impl IssueQueue {
    /// An empty queue holding at most `capacity` instructions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> IssueQueue {
        assert!(capacity > 0, "issue queue capacity must be positive");
        IssueQueue {
            entries: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Entries currently waiting.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no instruction is waiting.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` when no slot is free.
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Insert a dispatched instruction (callers dispatch in program order,
    /// so the vector stays age-ordered). Returns `false` when full.
    pub fn push(&mut self, id: InstId) -> bool {
        if self.is_full() {
            return false;
        }
        self.entries.push(id);
        true
    }

    /// Select up to `max_grants` instructions, oldest first.
    ///
    /// `try_grant` is called per candidate and performs all readiness
    /// checks *and* resource booking; returning `true` removes the entry
    /// from the queue. Returns the granted handles in age order.
    pub fn select(
        &mut self,
        max_grants: usize,
        mut try_grant: impl FnMut(InstId) -> bool,
    ) -> Vec<InstId> {
        let mut granted = Vec::new();
        if max_grants == 0 {
            return granted;
        }
        let mut keep = Vec::with_capacity(self.entries.len());
        for &id in &self.entries {
            if granted.len() < max_grants && try_grant(id) {
                granted.push(id);
            } else {
                keep.push(id);
            }
        }
        self.entries = keep;
        granted
    }

    /// Iterate waiting entries oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = InstId> + '_ {
        self.entries.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rob::Rob;
    use dcg_isa::{Inst, OpClass};

    fn ids(n: usize) -> (Rob, Vec<InstId>) {
        let mut rob = Rob::new(n.max(1));
        let v = (0..n)
            .map(|k| rob.push(Inst::alu(k as u64 * 4, OpClass::IntAlu)).unwrap())
            .collect();
        (rob, v)
    }

    #[test]
    fn push_respects_capacity() {
        let (_rob, handles) = ids(3);
        let mut iq = IssueQueue::new(2);
        assert!(iq.push(handles[0]));
        assert!(iq.push(handles[1]));
        assert!(iq.is_full());
        assert!(!iq.push(handles[2]));
        assert_eq!(iq.len(), 2);
    }

    #[test]
    fn select_is_oldest_first_and_removes() {
        let (_rob, handles) = ids(4);
        let mut iq = IssueQueue::new(8);
        for &h in &handles {
            iq.push(h);
        }
        // Grant everything except the second-oldest.
        let granted = iq.select(8, |id| id.seq() != 1);
        let seqs: Vec<u64> = granted.iter().map(|g| g.seq()).collect();
        assert_eq!(seqs, vec![0, 2, 3]);
        let left: Vec<u64> = iq.iter().map(|g| g.seq()).collect();
        assert_eq!(left, vec![1]);
    }

    #[test]
    fn select_honours_max_grants() {
        let (_rob, handles) = ids(6);
        let mut iq = IssueQueue::new(8);
        for &h in &handles {
            iq.push(h);
        }
        let granted = iq.select(2, |_| true);
        assert_eq!(granted.len(), 2);
        assert_eq!(iq.len(), 4);
        // Oldest remaining is seq 2.
        assert_eq!(iq.iter().next().unwrap().seq(), 2);
    }

    #[test]
    fn select_zero_is_noop() {
        let (_rob, handles) = ids(2);
        let mut iq = IssueQueue::new(4);
        for &h in &handles {
            iq.push(h);
        }
        let granted = iq.select(0, |_| true);
        assert!(granted.is_empty());
        assert_eq!(iq.len(), 2);
    }

    #[test]
    fn grant_closure_sees_each_candidate_once() {
        let (_rob, handles) = ids(5);
        let mut iq = IssueQueue::new(8);
        for &h in &handles {
            iq.push(h);
        }
        let mut seen = Vec::new();
        let _ = iq.select(8, |id| {
            seen.push(id.seq());
            false
        });
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert_eq!(iq.len(), 5, "nothing granted, nothing removed");
    }
}
