//! Aggregate simulation statistics and the utilization numbers the paper's
//! §5 quotes (execution units ≈ 35 %/23 %, pipeline latches ≈ 60 %, memory
//! ports ≈ 40 %, result bus ≈ 40 %).

use dcg_isa::FuClass;

use crate::activity::{ActivityBlock, CycleActivity};
use crate::config::SimConfig;

/// Running totals over a simulation.
///
/// # Example
///
/// ```
/// use dcg_sim::{Processor, SimConfig};
/// use dcg_workloads::{Spec2000, SyntheticWorkload};
///
/// let cfg = SimConfig::baseline_8wide();
/// let stream = SyntheticWorkload::new(Spec2000::by_name("gzip").unwrap(), 1);
/// let mut cpu = Processor::new(cfg.clone(), stream);
/// cpu.run_until_commits(5_000, |_| {});
/// let s = cpu.stats();
/// assert!(s.ipc() > 0.0);
/// assert!(s.port_utilization(&cfg) <= 1.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Instructions fetched.
    pub fetched: u64,
    /// Instructions issued.
    pub issued: u64,
    /// FP instructions issued.
    pub issued_fp: u64,
    /// Loads issued.
    pub issued_loads: u64,
    /// Stores issued.
    pub issued_stores: u64,
    /// Active instance-cycles per unit class.
    pub fu_active_cycles: [u64; FuClass::COUNT],
    /// D-cache port-cycles in use (decoder firings).
    pub dcache_port_cycles: u64,
    /// D-cache accesses.
    pub dcache_accesses: u64,
    /// D-cache misses.
    pub dcache_misses: u64,
    /// L2 accesses.
    pub l2_accesses: u64,
    /// I-cache accesses.
    pub icache_accesses: u64,
    /// I-cache misses.
    pub icache_misses: u64,
    /// Branch-predictor lookups.
    pub bpred_lookups: u64,
    /// Branch mispredictions (accumulated from per-cycle activity, so the
    /// statistics stay a pure function of the activity stream).
    pub mispredicts: u64,
    /// Result-bus bus-cycles in use.
    pub result_bus_cycles: u64,
    /// Register-file reads.
    pub regfile_reads: u64,
    /// Register-file writes.
    pub regfile_writes: u64,
    /// Slots written per latch group (summed over cycles).
    pub latch_slot_writes: Vec<u64>,
}

impl SimStats {
    /// Accumulate one cycle's activity.
    pub fn record(&mut self, act: &CycleActivity) {
        self.cycles += 1;
        self.committed += u64::from(act.committed);
        self.fetched += u64::from(act.fetched);
        self.issued += u64::from(act.issued);
        self.issued_fp += u64::from(act.issued_fp);
        self.issued_loads += u64::from(act.issued_loads);
        self.issued_stores += u64::from(act.issued_stores);
        for c in FuClass::ALL {
            self.fu_active_cycles[c.index()] += u64::from(act.fu_active[c.index()].count_ones());
        }
        self.dcache_port_cycles += u64::from(act.dcache_port_mask.count_ones());
        self.dcache_accesses += u64::from(act.dcache_load_accesses + act.dcache_store_accesses);
        self.dcache_misses += u64::from(act.dcache_misses);
        self.l2_accesses += u64::from(act.l2_accesses);
        self.icache_accesses += u64::from(act.icache_access);
        self.icache_misses += u64::from(act.icache_miss);
        self.bpred_lookups += u64::from(act.bpred_lookups);
        self.mispredicts += u64::from(act.bpred_mispredicts);
        self.result_bus_cycles += u64::from(act.result_bus_used);
        self.regfile_reads += u64::from(act.regfile_reads);
        self.regfile_writes += u64::from(act.regfile_writes);
        if self.latch_slot_writes.len() < act.latch_occupancy.len() {
            self.latch_slot_writes.resize(act.latch_occupancy.len(), 0);
        }
        for (sum, occ) in self.latch_slot_writes.iter_mut().zip(&act.latch_occupancy) {
            *sum += u64::from(*occ);
        }
    }

    /// Accumulate columns `from..to` of a block.
    ///
    /// All counters are integer folds, so summing a column and adding the
    /// total is exactly the per-cycle [`record`](SimStats::record) fold —
    /// the block path is bit-identical to the scalar path by construction.
    pub fn record_block(&mut self, block: &ActivityBlock, from: usize, to: usize) {
        debug_assert!(from <= to && to <= block.len());
        if from == to {
            return;
        }
        fn sum(col: &[u32]) -> u64 {
            col.iter().map(|&v| u64::from(v)).sum()
        }
        fn pop(col: &[u32]) -> u64 {
            col.iter().map(|&v| u64::from(v.count_ones())).sum()
        }
        self.cycles += (to - from) as u64;
        self.committed += sum(&block.committed[from..to]);
        self.fetched += sum(&block.fetched[from..to]);
        self.issued += sum(&block.issued[from..to]);
        self.issued_fp += sum(&block.issued_fp[from..to]);
        self.issued_loads += sum(&block.issued_loads[from..to]);
        self.issued_stores += sum(&block.issued_stores[from..to]);
        for c in FuClass::ALL {
            self.fu_active_cycles[c.index()] += pop(&block.fu_active[c.index()][from..to]);
        }
        self.dcache_port_cycles += pop(&block.dcache_port_mask[from..to]);
        self.dcache_accesses += sum(&block.dcache_load_accesses[from..to])
            + sum(&block.dcache_store_accesses[from..to]);
        self.dcache_misses += sum(&block.dcache_misses[from..to]);
        self.l2_accesses += sum(&block.l2_accesses[from..to]);
        let span = ActivityBlock::lane_range(from, to);
        self.icache_accesses += u64::from((block.icache_access_lanes & span).count_ones());
        self.icache_misses += u64::from((block.icache_miss_lanes & span).count_ones());
        self.bpred_lookups += sum(&block.bpred_lookups[from..to]);
        self.mispredicts += sum(&block.bpred_mispredicts[from..to]);
        self.result_bus_cycles += sum(&block.result_bus_used[from..to]);
        self.regfile_reads += sum(&block.regfile_reads[from..to]);
        self.regfile_writes += sum(&block.regfile_writes[from..to]);
        if self.latch_slot_writes.len() < block.groups {
            self.latch_slot_writes.resize(block.groups, 0);
        }
        for row in block.latch_occupancy[from * block.groups..to * block.groups]
            .chunks_exact(block.groups.max(1))
        {
            for (acc, &occ) in self.latch_slot_writes.iter_mut().zip(row) {
                *acc += u64::from(occ);
            }
        }
    }

    /// Difference between this snapshot and an `earlier` one: statistics
    /// for the window between the two (e.g. excluding warm-up).
    ///
    /// # Panics
    ///
    /// Panics (debug) if `earlier` is not actually earlier.
    pub fn delta(&self, earlier: &SimStats) -> SimStats {
        debug_assert!(earlier.cycles <= self.cycles, "snapshots out of order");
        let mut latch = self.latch_slot_writes.clone();
        for (a, b) in latch.iter_mut().zip(&earlier.latch_slot_writes) {
            *a -= b;
        }
        let mut fu = self.fu_active_cycles;
        for (a, b) in fu.iter_mut().zip(&earlier.fu_active_cycles) {
            *a -= b;
        }
        SimStats {
            cycles: self.cycles - earlier.cycles,
            committed: self.committed - earlier.committed,
            fetched: self.fetched - earlier.fetched,
            issued: self.issued - earlier.issued,
            issued_fp: self.issued_fp - earlier.issued_fp,
            issued_loads: self.issued_loads - earlier.issued_loads,
            issued_stores: self.issued_stores - earlier.issued_stores,
            fu_active_cycles: fu,
            dcache_port_cycles: self.dcache_port_cycles - earlier.dcache_port_cycles,
            dcache_accesses: self.dcache_accesses - earlier.dcache_accesses,
            dcache_misses: self.dcache_misses - earlier.dcache_misses,
            l2_accesses: self.l2_accesses - earlier.l2_accesses,
            icache_accesses: self.icache_accesses - earlier.icache_accesses,
            icache_misses: self.icache_misses - earlier.icache_misses,
            bpred_lookups: self.bpred_lookups - earlier.bpred_lookups,
            mispredicts: self.mispredicts - earlier.mispredicts,
            result_bus_cycles: self.result_bus_cycles - earlier.result_bus_cycles,
            regfile_reads: self.regfile_reads - earlier.regfile_reads,
            regfile_writes: self.regfile_writes - earlier.regfile_writes,
            latch_slot_writes: latch,
        }
    }

    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Issued instructions per cycle (PLB's primary trigger metric).
    pub fn issue_ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.issued as f64 / self.cycles as f64
        }
    }

    /// Utilization of unit class `class`: active instance-cycles over total
    /// instance-cycles.
    pub fn fu_utilization(&self, class: FuClass, config: &SimConfig) -> f64 {
        let denom = self.cycles * config.fu_count(class) as u64;
        if denom == 0 {
            0.0
        } else {
            self.fu_active_cycles[class.index()] as f64 / denom as f64
        }
    }

    /// Combined utilization of the integer unit classes.
    pub fn int_unit_utilization(&self, config: &SimConfig) -> f64 {
        let active = self.fu_active_cycles[FuClass::IntAlu.index()]
            + self.fu_active_cycles[FuClass::IntMulDiv.index()];
        let denom = self.cycles * (config.int_alus + config.int_muldivs) as u64;
        if denom == 0 {
            0.0
        } else {
            active as f64 / denom as f64
        }
    }

    /// Combined utilization of the FP unit classes.
    pub fn fp_unit_utilization(&self, config: &SimConfig) -> f64 {
        let active = self.fu_active_cycles[FuClass::FpAlu.index()]
            + self.fu_active_cycles[FuClass::FpMulDiv.index()];
        let denom = self.cycles * (config.fp_alus + config.fp_muldivs) as u64;
        if denom == 0 {
            0.0
        } else {
            active as f64 / denom as f64
        }
    }

    /// D-cache port (wordline decoder) utilization.
    pub fn port_utilization(&self, config: &SimConfig) -> f64 {
        let denom = self.cycles * config.mem_ports as u64;
        if denom == 0 {
            0.0
        } else {
            self.dcache_port_cycles as f64 / denom as f64
        }
    }

    /// Result-bus utilization.
    pub fn result_bus_utilization(&self, config: &SimConfig) -> f64 {
        let denom = self.cycles * config.result_buses as u64;
        if denom == 0 {
            0.0
        } else {
            self.result_bus_cycles as f64 / denom as f64
        }
    }

    /// Average slot occupancy of latch group `idx` relative to the issue
    /// width (the "latch utilization" of paper §5.3).
    pub fn latch_utilization(&self, idx: usize, config: &SimConfig) -> f64 {
        let denom = self.cycles * config.issue_width as u64;
        if denom == 0 || idx >= self.latch_slot_writes.len() {
            0.0
        } else {
            self.latch_slot_writes[idx] as f64 / denom as f64
        }
    }

    /// Average latch utilization across all groups.
    pub fn mean_latch_utilization(&self, config: &SimConfig) -> f64 {
        if self.latch_slot_writes.is_empty() {
            return 0.0;
        }
        let total: f64 = (0..self.latch_slot_writes.len())
            .map(|i| self.latch_utilization(i, config))
            .sum();
        total / self.latch_slot_writes.len() as f64
    }

    /// D-cache miss rate.
    pub fn dcache_miss_rate(&self) -> f64 {
        if self.dcache_accesses == 0 {
            0.0
        } else {
            self.dcache_misses as f64 / self.dcache_accesses as f64
        }
    }

    /// Branch misprediction rate.
    pub fn mispredict_rate(&self) -> f64 {
        if self.bpred_lookups == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.bpred_lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_activity() -> CycleActivity {
        let mut a = CycleActivity {
            committed: 4,
            issued: 5,
            issued_fp: 2,
            dcache_port_mask: 0b01,
            dcache_load_accesses: 1,
            result_bus_used: 4,
            ..CycleActivity::default()
        };
        a.fu_active[FuClass::IntAlu.index()] = 0b0111; // 3 active
        a.fu_active[FuClass::FpAlu.index()] = 0b0011;
        a.latch_occupancy = vec![8, 8, 4, 4];
        a
    }

    #[test]
    fn record_accumulates() {
        let mut s = SimStats::default();
        for _ in 0..10 {
            s.record(&sample_activity());
        }
        assert_eq!(s.cycles, 10);
        assert_eq!(s.committed, 40);
        assert_eq!(s.ipc(), 4.0);
        assert_eq!(s.issue_ipc(), 5.0);
        assert_eq!(s.fu_active_cycles[FuClass::IntAlu.index()], 30);
        assert_eq!(s.latch_slot_writes, vec![80, 80, 40, 40]);
    }

    #[test]
    fn utilizations() {
        let cfg = SimConfig::baseline_8wide();
        let mut s = SimStats::default();
        for _ in 0..100 {
            s.record(&sample_activity());
        }
        // 3 of 6 int ALUs active, 0 of 2 muldiv.
        assert!((s.fu_utilization(FuClass::IntAlu, &cfg) - 0.5).abs() < 1e-9);
        assert!((s.int_unit_utilization(&cfg) - 3.0 / 8.0).abs() < 1e-9);
        assert!((s.fp_unit_utilization(&cfg) - 2.0 / 8.0).abs() < 1e-9);
        // 1 of 2 ports.
        assert!((s.port_utilization(&cfg) - 0.5).abs() < 1e-9);
        // 4 of 8 buses.
        assert!((s.result_bus_utilization(&cfg) - 0.5).abs() < 1e-9);
        // Latch groups: 8/8, 8/8, 4/8, 4/8 -> mean 0.75.
        assert!((s.mean_latch_utilization(&cfg) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn record_block_matches_scalar_record() {
        let mut acts = Vec::new();
        for cycle in 1..=75u64 {
            let mut a = sample_activity();
            a.cycle = cycle;
            a.committed = (cycle % 5) as u32;
            a.icache_access = cycle % 2 == 0;
            a.icache_miss = cycle % 6 == 0;
            a.bpred_lookups = (cycle % 3) as u32;
            acts.push(a);
        }
        let mut scalar = SimStats::default();
        for a in &acts {
            scalar.record(a);
        }
        let mut blocked = SimStats::default();
        let mut block = ActivityBlock::new(4);
        for chunk in acts.chunks(crate::activity::BLOCK_CYCLES) {
            block.clear(chunk[0].cycle);
            for a in chunk {
                block.push(a);
            }
            // Exercise a partial span plus the remainder.
            let mid = chunk.len() / 2;
            blocked.record_block(&block, 0, mid);
            blocked.record_block(&block, mid, chunk.len());
        }
        assert_eq!(format!("{scalar:?}"), format!("{blocked:?}"));
    }

    #[test]
    fn empty_stats_are_zero_not_nan() {
        let cfg = SimConfig::baseline_8wide();
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.fu_utilization(FuClass::FpAlu, &cfg), 0.0);
        assert_eq!(s.port_utilization(&cfg), 0.0);
        assert_eq!(s.mean_latch_utilization(&cfg), 0.0);
        assert_eq!(s.dcache_miss_rate(), 0.0);
        assert_eq!(s.mispredict_rate(), 0.0);
    }
}
