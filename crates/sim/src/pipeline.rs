//! The out-of-order pipeline driver.
//!
//! Structure (paper Figure 3): Fetch → Decode → Rename → Issue → Register
//! read → Execute → Memory → Writeback, with in-order dispatch into a
//! 128-entry window, age-ordered wakeup/select, and in-order commit.
//!
//! ## Timing conventions (8-stage geometry)
//!
//! * an instruction selected (issued) in cycle `X` reads registers in `X+1`
//!   and starts executing in `X+2` (paper Figure 6);
//! * a load issued in `X` accesses the D-cache in `X+3` (paper §3.3);
//! * an instruction finishing execution in cycle `Y` drives a result bus
//!   (writeback) in `Y+2` (paper §3.4);
//! * committed stores access the D-cache 1 cycle after reaching the head
//!   (or 2 with [`StoreTiming::DelayOneCycle`]).
//!
//! ## Trace-driven simplifications (documented in DESIGN.md)
//!
//! * Wrong-path instructions are not simulated: a mispredicted branch
//!   stalls fetch until it executes, after which the front end refills —
//!   the effective penalty matches Table 1's 8 cycles.
//! * Cache outcomes are computed when an access is *scheduled* (its cycle
//!   is passed explicitly), which makes all future resource usage
//!   deterministic — the property DCG exploits.

use std::collections::VecDeque;

use dcg_isa::{FuClass, Inst, OpClass};
use dcg_workloads::InstStream;

use crate::activity::{CycleActivity, FlowHistory, FuGrant, LatchGroups};
use crate::bpred::BranchPredictor;
use crate::cache::CacheHierarchy;
use crate::config::{SimConfig, StoreTiming};
use crate::constraint::ResourceConstraints;
use crate::fu::{ActiveTracker, FuPool, FuSelectPolicy};
use crate::iq::IssueQueue;
use crate::lsq::{LoadDisposition, Lsq};
use crate::rob::{InstId, Rob};
use crate::stats::SimStats;

/// Scheduling-ring horizon; must exceed the worst-case scheduling distance
/// (L2 + memory latency + slack).
const RING: usize = 512;

/// Cycles without a commit before the watchdog declares a deadlock.
const WATCHDOG_CYCLES: u64 = 100_000;

#[derive(Debug, Clone, Copy)]
struct FrontInst {
    inst: Inst,
    mispredicted: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct DcacheSched {
    loads: u32,
    stores: u32,
    misses: u32,
    l2: u32,
}

/// The simulated processor.
///
/// # Example
///
/// ```
/// use dcg_sim::{Processor, SimConfig};
/// use dcg_workloads::{Spec2000, SyntheticWorkload};
///
/// let stream = SyntheticWorkload::new(Spec2000::by_name("gzip").unwrap(), 1);
/// let mut cpu = Processor::new(SimConfig::baseline_8wide(), stream);
/// cpu.run_until_commits(1_000, |_act| {});
/// assert!(cpu.stats().ipc() > 0.0);
/// ```
#[derive(Debug)]
pub struct Processor<S> {
    cfg: SimConfig,
    constraints: ResourceConstraints,
    stream: S,
    peeked: Option<Inst>,
    cycle: u64,
    rob: Rob,
    iq: IssueQueue,
    lsq: Lsq,
    fus: FuPool,
    active: ActiveTracker,
    bpred: BranchPredictor,
    icache: CacheHierarchy,
    dcache: CacheHierarchy,
    map_table: Vec<Option<InstId>>,
    front: Vec<VecDeque<FrontInst>>,
    fetch_blocked: bool,
    fetch_resume_at: Option<u64>,
    icache_stall_until: u64,
    // Scheduling rings, indexed by cycle % RING.
    bus_booked: Vec<u32>,
    load_port_ring: Vec<u32>,
    store_port_ring: Vec<u32>,
    dcache_ring: Vec<DcacheSched>,
    store_drain: Vec<(u64, InstId)>,
    latch_groups: LatchGroups,
    history: FlowHistory,
    activity: CycleActivity,
    stats: SimStats,
    last_commit_cycle: u64,
    issue_to_exec: u32,
    exec_to_wb: u32,
    renamed_this_cycle: u32,
    retire_log_enabled: bool,
    retire_log: Vec<Inst>,
}

impl<S: InstStream> Processor<S> {
    /// Build a processor running `stream` with the default (sequential
    /// priority, §3.1) unit-selection policy.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`SimConfig::validate`].
    pub fn new(config: SimConfig, stream: S) -> Processor<S> {
        Self::with_policy(config, stream, FuSelectPolicy::SequentialPriority)
    }

    /// Build a processor with an explicit unit-selection policy (used by
    /// the FU-policy ablation).
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`SimConfig::validate`].
    pub fn with_policy(config: SimConfig, stream: S, policy: FuSelectPolicy) -> Processor<S> {
        if let Err(e) = config.validate() {
            panic!("invalid simulator configuration: {e}");
        }
        let front_depth = config.depth.front_depth();
        let latch_groups = LatchGroups::new(&config.depth);
        Processor {
            constraints: ResourceConstraints::unrestricted(&config),
            stream,
            peeked: None,
            cycle: 0,
            rob: Rob::new(config.rob_entries),
            iq: IssueQueue::new(config.iq_entries),
            lsq: Lsq::new(config.lsq_entries),
            fus: FuPool::new(&config, policy),
            active: ActiveTracker::new(&config),
            bpred: BranchPredictor::new(&config.bpred),
            icache: CacheHierarchy::new(config.icache, config.l2, config.mem_latency),
            dcache: {
                let d = CacheHierarchy::new(config.dcache, config.l2, config.mem_latency);
                if config.dcache_next_line_prefetch {
                    d.with_next_line_prefetch()
                } else {
                    d
                }
            },
            map_table: vec![None; dcg_isa::NUM_ARCH_REGS as usize],
            front: (0..front_depth).map(|_| VecDeque::new()).collect(),
            fetch_blocked: false,
            fetch_resume_at: None,
            icache_stall_until: 0,
            bus_booked: vec![0; RING],
            load_port_ring: vec![0; RING],
            store_port_ring: vec![0; RING],
            dcache_ring: vec![DcacheSched::default(); RING],
            store_drain: Vec::new(),
            latch_groups,
            history: FlowHistory::new(),
            activity: CycleActivity::default(),
            stats: SimStats::default(),
            last_commit_cycle: 0,
            issue_to_exec: config.depth.issue_to_execute(),
            exec_to_wb: config.depth.execute_to_writeback(),
            renamed_this_cycle: 0,
            retire_log_enabled: false,
            retire_log: Vec::new(),
            cfg: config,
        }
    }

    /// The configuration the processor was built with.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The pipeline-latch geometry (for the power model and DCG).
    pub fn latch_groups(&self) -> &LatchGroups {
        &self.latch_groups
    }

    /// Current cycle number.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Instructions committed so far.
    pub fn committed(&self) -> u64 {
        self.stats.committed
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The branch predictor (for accuracy statistics).
    pub fn bpred(&self) -> &BranchPredictor {
        &self.bpred
    }

    /// The data-cache hierarchy (for miss statistics).
    pub fn dcache(&self) -> &CacheHierarchy {
        &self.dcache
    }

    /// Replace the dynamic resource constraints (PLB mode switches).
    ///
    /// # Panics
    ///
    /// Panics if the constraints are invalid for this configuration.
    pub fn set_constraints(&mut self, constraints: ResourceConstraints) {
        if let Err(e) = constraints.validate(&self.cfg) {
            panic!("invalid resource constraints: {e}");
        }
        self.constraints = constraints;
    }

    /// Current resource constraints.
    pub fn constraints(&self) -> &ResourceConstraints {
        &self.constraints
    }

    /// The instruction stream driving this processor.
    pub fn stream(&self) -> &S {
        &self.stream
    }

    /// Start recording every retired instruction, in commit order.
    ///
    /// Off by default: the differential harness turns it on to compare
    /// the pipeline's retired stream against a functional reference
    /// model. Purely observational — it does not perturb timing, the
    /// activity trace, or any statistic.
    pub fn enable_retire_log(&mut self) {
        self.retire_log_enabled = true;
    }

    /// Retired instructions recorded since [`Processor::enable_retire_log`].
    pub fn retired_log(&self) -> &[Inst] {
        &self.retire_log
    }

    /// Advance one cycle and return what happened.
    ///
    /// # Panics
    ///
    /// Panics if no instruction commits for 100 000 consecutive cycles
    /// (deadlock watchdog).
    pub fn step(&mut self) -> &CycleActivity {
        self.cycle += 1;
        let now = self.cycle;
        self.fus.advance();
        self.active.advance();
        self.activity.reset(now);
        self.renamed_this_cycle = 0;

        self.drain_stores(now);
        self.do_commit(now);
        self.do_issue(now);
        self.do_dispatch(now);
        self.do_front_advance();
        self.do_fetch(now);
        self.finalize_cycle(now);
        &self.activity
    }

    /// Run until `n` further instructions commit, invoking `on_cycle` with
    /// each cycle's activity.
    pub fn run_until_commits(&mut self, n: u64, mut on_cycle: impl FnMut(&CycleActivity)) {
        let target = self.stats.committed + n;
        while self.stats.committed < target {
            self.step();
            on_cycle(&self.activity);
        }
    }

    // ------------------------------------------------------------------
    // Stage implementations
    // ------------------------------------------------------------------

    fn drain_stores(&mut self, now: u64) {
        let lsq = &mut self.lsq;
        self.store_drain.retain(|&(t, id)| {
            if t <= now {
                lsq.remove(id);
                false
            } else {
                true
            }
        });
    }

    fn do_commit(&mut self, now: u64) {
        let mut committed = 0u32;
        while committed < self.cfg.commit_width as u32 {
            let Some(head) = self.rob.head_id() else {
                break;
            };
            let ready = {
                let e = self.rob.get(head).expect("head is live");
                e.commit_ready(now)
            };
            if !ready {
                break;
            }
            let (op, addr, inst) = {
                let e = self.rob.get(head).expect("head is live");
                (e.inst.op, e.inst.mem.map(|m| m.addr), e.inst)
            };
            if op == OpClass::Store {
                // Schedule the commit-time D-cache access; the store then
                // retires immediately and drains through the LSQ/write
                // buffer (paper §3.3).
                let delay = match self.cfg.store_timing {
                    StoreTiming::KnownOneCycleAhead => 1,
                    StoreTiming::DelayOneCycle => 2,
                };
                let Some((t, port)) = self.reserve_store_port(now, delay) else {
                    break; // port pressure: retry next cycle
                };
                let addr = addr.expect("store has an address");
                let out = self.dcache.access(addr, t);
                let idx = (t % RING as u64) as usize;
                self.store_port_ring[idx] |= 1 << port;
                self.dcache_ring[idx].stores += 1;
                if out.l1_miss {
                    self.dcache_ring[idx].misses += 1;
                    self.dcache_ring[idx].l2 += 1;
                }
                if out.prefetched {
                    self.dcache_ring[idx].l2 += 1;
                }
                self.active
                    .mark(FuClass::MemPort, port, (t - now) as u32, 1);
                self.store_drain.push((t, head));
            } else if op == OpClass::Load {
                self.lsq.remove(head);
            }
            // Past the last early-exit: this instruction definitely
            // retires this cycle.
            if self.retire_log_enabled {
                self.retire_log.push(inst);
            }
            self.release_map(head);
            self.rob.pop_head();
            committed += 1;
        }
        self.activity.committed = committed;
        if committed > 0 {
            self.last_commit_cycle = now;
        } else if now - self.last_commit_cycle > WATCHDOG_CYCLES {
            panic!(
                "deadlock: no commit for {WATCHDOG_CYCLES} cycles at cycle {now} \
                 (rob={}, iq={}, lsq={})",
                self.rob.len(),
                self.iq.len(),
                self.lsq.len()
            );
        }
    }

    fn reserve_store_port(&mut self, now: u64, delay: u32) -> Option<(u64, usize)> {
        for extra in 0..32u32 {
            let offset = delay + extra;
            if let Some(port) = self.fus.reserve_any_at(FuClass::MemPort, offset) {
                return Some((now + u64::from(offset), port));
            }
        }
        None
    }

    fn release_map(&mut self, id: InstId) {
        let dest = self.rob.get(id).and_then(|e| e.inst.dest);
        if let Some(r) = dest {
            let slot = &mut self.map_table[r.dense()];
            if *slot == Some(id) {
                *slot = None;
            }
        }
    }

    fn do_issue(&mut self, now: u64) {
        for c in FuClass::ALL {
            self.fus.set_enabled(c, self.constraints.enabled(c));
        }
        let allowed = self.cfg.issue_width.min(self.constraints.issue_width);
        let mut iq = std::mem::replace(&mut self.iq, IssueQueue::new(1));
        let _granted = iq.select(allowed, |id| self.try_issue_one(id, now));
        self.iq = iq;
    }

    fn operands_ready(&self, id: InstId, now: u64) -> bool {
        let e = self.rob.get(id).expect("candidate is live");
        for p in e.producers.iter().flatten() {
            if let Some(pe) = self.rob.get(*p) {
                match pe.result_ready {
                    Some(r) if r <= now => {}
                    _ => return false,
                }
            }
            // A stale handle means the producer committed: value is ready.
        }
        true
    }

    fn try_issue_one(&mut self, id: InstId, now: u64) -> bool {
        if !self.operands_ready(id, now) {
            return false;
        }
        let (op, mem, mispredicted, srcs) = {
            let e = self.rob.get(id).expect("candidate is live");
            (
                e.inst.op,
                e.inst.mem,
                e.mispredicted,
                e.inst.src_count() as u32,
            )
        };
        let spec = self.cfg.op_spec(op);
        let ex_off = self.issue_to_exec;

        let issued = match op {
            OpClass::Load => self.issue_load(id, now, mem.expect("load has addr").addr),
            OpClass::Store => self.issue_store(id, now),
            _ => self.issue_alu(id, now, op, spec.latency, spec.interval, mispredicted),
        };
        if !issued {
            return false;
        }

        let e = self.rob.get_mut(id).expect("candidate is live");
        e.issued = Some(now);
        self.activity.issued += 1;
        if op.is_fp() {
            self.activity.issued_fp += 1;
        }
        self.activity.regfile_reads += srcs;
        let _ = ex_off;
        true
    }

    fn issue_load(&mut self, id: InstId, now: u64, addr: u64) -> bool {
        let disp = self.lsq.load_disposition(id, addr);
        if matches!(disp, LoadDisposition::WaitForStore(_)) {
            return false;
        }
        let ex_off = self.issue_to_exec;
        // The port pipeline is fully pipelined (AGU then array access):
        // only the array-access cycle at X+3 is a structural resource, so
        // at most `mem_ports` loads can issue per cycle.
        let Some(port) = self.fus.try_reserve(FuClass::MemPort, ex_off + 1, 1) else {
            return false;
        };
        let access_cycle = now + u64::from(ex_off) + 1;
        let out = self.dcache.access(addr, access_cycle);
        // Paper §3.3: the load accesses the cache and the LSQ
        // simultaneously; a forwarded load still fires the decoders but its
        // data comes from the queue at hit latency.
        let data_ready = if matches!(disp, LoadDisposition::Forward) {
            access_cycle + u64::from(self.cfg.dcache.latency)
        } else {
            out.data_ready
        };
        let idx = (access_cycle % RING as u64) as usize;
        self.load_port_ring[idx] |= 1 << port;
        self.dcache_ring[idx].loads += 1;
        if out.l1_miss {
            self.dcache_ring[idx].misses += 1;
            self.dcache_ring[idx].l2 += 1;
        }
        if out.prefetched {
            self.dcache_ring[idx].l2 += 1;
        }
        // Decoder active exactly in the access cycle.
        self.active.mark(FuClass::MemPort, port, ex_off + 1, 1);
        let wb = self.book_bus(data_ready + 1);
        {
            let e = self.rob.get_mut(id).expect("load is live");
            e.result_ready = Some(data_ready.saturating_sub(2).max(now + 1));
            e.writeback = Some(wb);
            e.complete_at = Some(wb);
            e.fu = Some((FuClass::MemPort, port));
        }
        self.lsq.mark_executed(id);
        self.activity.issued_loads += 1;
        self.activity.grants.push(FuGrant {
            class: FuClass::MemPort,
            instance: port,
            exec_start: ex_off + 1,
            active_len: 1,
        });
        true
    }

    fn issue_store(&mut self, id: InstId, now: u64) -> bool {
        let ex_off = self.issue_to_exec;
        // Address generation only: the pipelined AGU is not a structural
        // hazard, and the D-cache access happens at commit (§3.3).
        {
            let e = self.rob.get_mut(id).expect("store is live");
            e.complete_at = Some(now + u64::from(ex_off) + 1);
        }
        self.lsq.mark_executed(id);
        self.activity.issued_stores += 1;
        true
    }

    fn issue_alu(
        &mut self,
        id: InstId,
        now: u64,
        op: OpClass,
        latency: u32,
        interval: u32,
        mispredicted: bool,
    ) -> bool {
        let class = op.fu_class();
        let ex_off = self.issue_to_exec;
        let Some(fu) = self.fus.try_reserve(class, ex_off, interval) else {
            return false;
        };
        let exec_end = now + u64::from(ex_off) + u64::from(latency) - 1;
        self.active.mark(class, fu, ex_off, latency);
        {
            let e = self.rob.get_mut(id).expect("candidate is live");
            e.fu = Some((class, fu));
            if op.writes_result() {
                e.result_ready = Some(now + u64::from(latency));
            }
        }
        if op.writes_result() {
            let wb = self.book_bus(exec_end + u64::from(self.exec_to_wb));
            let e = self.rob.get_mut(id).expect("candidate is live");
            e.writeback = Some(wb);
            e.complete_at = Some(wb);
        } else {
            let e = self.rob.get_mut(id).expect("candidate is live");
            e.complete_at = Some(exec_end + 1);
        }
        if mispredicted {
            // Branch resolves at the end of execute; fetch restarts next
            // cycle (Table 1's 8-cycle penalty emerges from the refill).
            self.fetch_resume_at = Some(exec_end + 1);
        }
        self.activity.grants.push(FuGrant {
            class,
            instance: fu,
            exec_start: ex_off,
            active_len: latency,
        });
        true
    }

    /// Book a result bus at the first free cycle at or after `desired`.
    fn book_bus(&mut self, desired: u64) -> u64 {
        let mut t = desired;
        loop {
            let idx = (t % RING as u64) as usize;
            if self.bus_booked[idx] < self.cfg.result_buses as u32 {
                self.bus_booked[idx] += 1;
                return t;
            }
            t += 1;
        }
    }

    fn do_dispatch(&mut self, now: u64) {
        let last = self.front.len() - 1;
        let mut dispatched = 0u32;
        while let Some(fi) = self.front[last].front().copied() {
            let is_mem = fi.inst.op.is_mem();
            if self.rob.is_full() || self.iq.is_full() || (is_mem && self.lsq.is_full()) {
                break;
            }
            self.front[last].pop_front();
            let id = self.rob.push(fi.inst).expect("checked not full");
            // Wire producers from the map table.
            let mut producers = [None, None];
            for (k, src) in fi.inst.srcs.iter().enumerate() {
                if let Some(r) = src {
                    if !r.is_zero() {
                        producers[k] = self.map_table[r.dense()];
                    }
                }
            }
            {
                let e = self.rob.get_mut(id).expect("just pushed");
                e.producers = producers;
                e.mispredicted = fi.mispredicted;
            }
            if let Some(dest) = fi.inst.dest {
                if !dest.is_zero() {
                    self.map_table[dest.dense()] = Some(id);
                }
            }
            if is_mem {
                let pushed = self.lsq.push(
                    id,
                    fi.inst.op == OpClass::Store,
                    fi.inst.mem.expect("mem op").addr,
                );
                debug_assert!(pushed, "LSQ space was checked");
            }
            let pushed = self.iq.push(id);
            debug_assert!(pushed, "IQ space was checked");
            dispatched += 1;
        }
        self.activity.dispatched = dispatched;
        let _ = now;
    }

    fn do_front_advance(&mut self) {
        let depth = &self.cfg.depth;
        let first_rename_slot = depth.fetch + depth.decode;
        for i in (1..self.front.len()).rev() {
            if self.front[i].is_empty() && !self.front[i - 1].is_empty() {
                let moved = std::mem::take(&mut self.front[i - 1]);
                if i == first_rename_slot {
                    self.renamed_this_cycle = moved.len() as u32;
                }
                self.front[i] = moved;
            }
        }
        // Single front slot (no distinct rename slot) degenerate case is
        // impossible: front_depth >= 3 for all valid geometries.
        self.activity.renamed = self.renamed_this_cycle;
    }

    fn do_fetch(&mut self, now: u64) {
        if self.fetch_blocked {
            match self.fetch_resume_at {
                Some(r) if now >= r => {
                    self.fetch_blocked = false;
                    self.fetch_resume_at = None;
                }
                _ => return,
            }
        }
        if now < self.icache_stall_until {
            return;
        }
        if !self.front[0].is_empty() {
            return; // structural stall: decode latch still occupied
        }

        let first_pc = self.peek().pc;
        self.activity.icache_access = true;
        let out = self.icache.access(first_pc, now);
        if out.l1_miss {
            self.activity.icache_miss = true;
            self.icache_stall_until = out.data_ready;
            return;
        }

        let fetch_limit = self.cfg.fetch_width.min(self.constraints.fetch_width);
        let mut fetched = 0u32;
        while (fetched as usize) < fetch_limit {
            let inst = self.take();
            let mut stop = false;
            let mut mispredicted = false;
            if let Some(info) = inst.branch {
                self.activity.bpred_lookups += 1;
                let (_pred, miss) = self.bpred.predict_and_update(inst.pc, info);
                mispredicted = miss;
                self.activity.bpred_mispredicts += u32::from(miss);
                // Cannot fetch past a taken branch in the same cycle.
                stop = info.taken || miss;
            }
            self.front[0].push_back(FrontInst { inst, mispredicted });
            fetched += 1;
            if mispredicted {
                self.fetch_blocked = true;
                self.fetch_resume_at = None; // set when the branch issues
                break;
            }
            if stop {
                break;
            }
        }
        self.activity.fetched = fetched;
    }

    fn peek(&mut self) -> &Inst {
        if self.peeked.is_none() {
            self.peeked = Some(self.stream.next_inst());
        }
        self.peeked.as_ref().expect("just filled")
    }

    fn take(&mut self) -> Inst {
        if let Some(i) = self.peeked.take() {
            i
        } else {
            self.stream.next_inst()
        }
    }

    fn finalize_cycle(&mut self, now: u64) {
        self.history.record(
            self.activity.fetched,
            self.activity.renamed,
            self.activity.issued,
        );
        let mut occ = std::mem::take(&mut self.activity.latch_occupancy);
        self.latch_groups.occupancies(&self.history, &mut occ);
        self.activity.latch_occupancy = occ;

        for c in FuClass::ALL {
            self.activity.fu_active[c.index()] = self.active.mask_now(c);
        }
        let idx = (now % RING as u64) as usize;
        self.activity.dcache_port_mask = self.load_port_ring[idx] | self.store_port_ring[idx];
        debug_assert_eq!(
            self.activity.dcache_port_mask,
            self.activity.fu_active[FuClass::MemPort.index()],
            "decoder mask must agree with the active tracker"
        );
        let sched = self.dcache_ring[idx];
        self.activity.dcache_load_accesses = sched.loads;
        self.activity.dcache_store_accesses = sched.stores;
        self.activity.dcache_misses = sched.misses;
        self.activity.l2_accesses = sched.l2;
        self.activity.result_bus_used = self.bus_booked[idx];
        self.activity.regfile_writes = self.bus_booked[idx];

        // Advance knowledge exposed to gating policies.
        let feed_slot = self.cfg.depth.fetch + self.cfg.depth.decode - 1;
        self.activity.decode_ready_next = self.front[feed_slot].len() as u32;
        self.activity.iq_occupancy = self.iq.len() as u32;
        self.activity.rob_occupancy = self.rob.len() as u32;
        self.activity.lsq_occupancy = self.lsq.len() as u32;
        self.activity.store_ports_next = self.store_port_ring[((now + 1) % RING as u64) as usize];
        self.activity.result_bus_in_2 = self.bus_booked[((now + 2) % RING as u64) as usize];

        // Retire this cycle's ring slots for reuse RING cycles from now.
        self.bus_booked[idx] = 0;
        self.load_port_ring[idx] = 0;
        self.store_port_ring[idx] = 0;
        self.dcache_ring[idx] = DcacheSched::default();

        self.stats.record(&self.activity);
        debug_assert_eq!(
            self.stats.mispredicts,
            self.bpred.mispredicts(),
            "per-cycle mispredict counts must sum to the predictor's total"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ResourceConstraints;
    use dcg_workloads::{Spec2000, SyntheticWorkload};

    fn ipc(cfg: SimConfig, bench: &str, commits: u64) -> f64 {
        let mut cpu = Processor::new(
            cfg,
            SyntheticWorkload::new(Spec2000::by_name(bench).expect("known"), 42),
        );
        cpu.run_until_commits(commits, |_| {});
        cpu.stats().ipc()
    }

    #[test]
    fn narrowing_issue_width_lowers_ipc() {
        let cfg = SimConfig::baseline_8wide();
        let mut cpu = Processor::new(
            cfg.clone(),
            SyntheticWorkload::new(Spec2000::by_name("gzip").unwrap(), 42),
        );
        cpu.set_constraints(
            ResourceConstraints::unrestricted(&cfg)
                .with_issue_width(2)
                .with_fetch_width(2),
        );
        cpu.run_until_commits(30_000, |_| {});
        let narrow = cpu.stats().ipc();
        let full = ipc(cfg, "gzip", 30_000);
        assert!(
            narrow < 0.8 * full,
            "2-wide machine must be slower: {narrow:.2} vs {full:.2}"
        );
        assert!(
            narrow <= 2.05,
            "cannot beat its own issue limit: {narrow:.2}"
        );
    }

    #[test]
    fn store_timing_options_cost_almost_nothing() {
        // Paper §3.3: delaying stores one cycle for clock-gate set-up has
        // "virtually no performance loss".
        let known = ipc(SimConfig::baseline_8wide(), "bzip2", 40_000);
        let delayed = ipc(
            SimConfig {
                store_timing: StoreTiming::DelayOneCycle,
                ..SimConfig::baseline_8wide()
            },
            "bzip2",
            40_000,
        );
        let loss = 1.0 - delayed / known;
        assert!(
            loss.abs() < 0.02,
            "store delay should be nearly free: {known:.3} -> {delayed:.3}"
        );
    }

    #[test]
    fn deeper_pipeline_pays_for_mispredicts() {
        // The 20-stage machine's longer refill shows up on a branchy,
        // poorly-predicted workload.
        let shallow = ipc(SimConfig::baseline_8wide(), "gcc", 40_000);
        let deep = ipc(SimConfig::deep_pipeline_20(), "gcc", 40_000);
        assert!(
            deep < shallow,
            "20 stages must not be faster on branchy code: {deep:.2} vs {shallow:.2}"
        );
    }

    #[test]
    fn activity_flows_are_conserved() {
        let cfg = SimConfig::baseline_8wide();
        let mut cpu = Processor::new(
            cfg,
            SyntheticWorkload::new(Spec2000::by_name("parser").unwrap(), 1),
        );
        let (mut fetched, mut dispatched, mut issued, mut committed) = (0u64, 0u64, 0u64, 0u64);
        for _ in 0..20_000 {
            let act = cpu.step();
            fetched += u64::from(act.fetched);
            dispatched += u64::from(act.dispatched);
            issued += u64::from(act.issued);
            committed += u64::from(act.committed);
        }
        // No wrong path is simulated, so nothing is ever discarded:
        // fetched >= dispatched >= issued >= committed, with bounded slack.
        assert!(fetched >= dispatched && dispatched >= issued && issued >= committed);
        assert!(fetched - dispatched <= 8 * 8, "front-end slack is bounded");
        assert!(dispatched - issued <= 128 + 8, "window slack is bounded");
        assert!(issued - committed <= 128 + 8, "ROB slack is bounded");
    }

    #[test]
    fn huge_code_footprints_miss_the_icache() {
        use dcg_isa::{ArchReg, BranchInfo, BranchKind, Inst, OpClass};
        use dcg_workloads::ReplayStream;
        // Straight-line code spanning 1 MB of PCs: every fetched line is
        // cold on the first lap and the I-cache (64 KB) cannot hold it.
        let span = 1 << 20;
        let mut trace: Vec<Inst> = (0..span / 4 - 1)
            .map(|k| {
                Inst::alu(4 * k, OpClass::IntAlu)
                    .with_dest(ArchReg::int(6 + (k % 20) as u8))
                    .with_srcs([Some(ArchReg::int(0)), None])
            })
            .collect();
        trace.push(Inst::branch(
            span - 4,
            BranchInfo {
                kind: BranchKind::Jump,
                taken: true,
                target: 0,
            },
        ));
        let mut big = Processor::new(
            SimConfig::baseline_8wide(),
            ReplayStream::new("bigcode", trace),
        );
        big.run_until_commits(400_000, |_| {});
        assert!(
            big.stats().icache_misses > 1_000,
            "1 MB of code must thrash the 64 KB I-cache: {} misses",
            big.stats().icache_misses
        );
        // A small loop with the same instruction mix barely misses.
        let small: Vec<Inst> = (0..63)
            .map(|k| {
                Inst::alu(4 * k, OpClass::IntAlu)
                    .with_dest(ArchReg::int(6 + (k % 20) as u8))
                    .with_srcs([Some(ArchReg::int(0)), None])
            })
            .chain(std::iter::once(Inst::branch(
                252,
                BranchInfo {
                    kind: BranchKind::Jump,
                    taken: true,
                    target: 0,
                },
            )))
            .collect();
        let mut tiny = Processor::new(
            SimConfig::baseline_8wide(),
            ReplayStream::new("tinycode", small),
        );
        tiny.run_until_commits(50_000, |_| {});
        assert!(tiny.stats().icache_misses < 20);
        assert!(
            tiny.stats().ipc() > big.stats().ipc(),
            "code misses must cost fetch bandwidth"
        );
    }

    #[test]
    #[should_panic(expected = "invalid resource constraints")]
    fn bad_constraints_are_rejected() {
        let cfg = SimConfig::baseline_8wide();
        let mut cpu = Processor::new(
            cfg.clone(),
            SyntheticWorkload::new(Spec2000::by_name("gzip").unwrap(), 1),
        );
        cpu.set_constraints(ResourceConstraints::unrestricted(&cfg).with_issue_width(0));
    }

    #[test]
    fn store_ports_next_signal_is_exact_for_stores() {
        // The §3.3 advance-knowledge signal: every store decoder firing at
        // cycle X was announced in store_ports_next at X-1.
        let cfg = SimConfig::baseline_8wide();
        let mut cpu = Processor::new(
            cfg,
            SyntheticWorkload::new(Spec2000::by_name("bzip2").unwrap(), 2),
        );
        let mut announced: u32 = 0;
        for _ in 0..20_000 {
            let act = cpu.step();
            // The announcement made at X-1 is the exact store port mask
            // for X (loads are covered by grants instead).
            assert_eq!(
                announced.count_ones(),
                act.dcache_store_accesses,
                "store announcement mismatch at cycle {}",
                act.cycle
            );
            assert_eq!(
                announced & !act.dcache_port_mask,
                0,
                "announced store port unused at cycle {}",
                act.cycle
            );
            announced = act.store_ports_next;
        }
    }
}
