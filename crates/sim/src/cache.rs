//! Set-associative caches and the two-level hierarchy (Table 1: 64 KB
//! 2-way 2-cycle L1 I/D, 2 MB 8-way 12-cycle unified L2, LRU replacement,
//! 100-cycle infinite-capacity main memory).
//!
//! Timing model: accesses return the cycle at which their data is
//! available. Misses are non-blocking — each outstanding line fill is
//! tracked so secondary misses to the same line merge with the fill in
//! flight (MSHR behaviour) instead of paying the full latency again.

use std::collections::HashMap;

use crate::config::CacheConfig;

/// Result of a tag-array lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupResult {
    /// Line present.
    Hit,
    /// Line absent (caller decides how to fill).
    Miss,
}

/// One set-associative, LRU, write-allocate cache level (tags only — the
/// simulator needs residency, not data).
///
/// # Example
///
/// ```
/// use dcg_sim::{CacheArray, LookupResult, SimConfig};
///
/// let mut l1 = CacheArray::new(SimConfig::baseline_8wide().dcache);
/// assert_eq!(l1.probe(0x1000), LookupResult::Miss);
/// l1.fill(0x1000);
/// assert_eq!(l1.probe(0x1000), LookupResult::Hit);
/// assert_eq!(l1.misses(), 1);
/// ```
#[derive(Debug)]
pub struct CacheArray {
    cfg: CacheConfig,
    sets: usize,
    line_shift: u32,
    tags: Vec<u64>,
    valid: Vec<bool>,
    lru: Vec<u64>,
    tick: u64,
    accesses: u64,
    misses: u64,
}

impl CacheArray {
    /// Build the tag array for `cfg`.
    pub fn new(cfg: CacheConfig) -> CacheArray {
        let sets = cfg.sets();
        assert!(cfg.line_bytes.is_power_of_two(), "line size must be 2^k");
        CacheArray {
            cfg,
            sets,
            line_shift: cfg.line_bytes.trailing_zeros(),
            tags: vec![0; sets * cfg.ways],
            valid: vec![false; sets * cfg.ways],
            lru: vec![0; sets * cfg.ways],
            tick: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// The configuration this array was built from.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    #[inline]
    fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        (line as usize) & (self.sets - 1)
    }

    /// Probe for `addr`, updating LRU and hit/miss statistics.
    pub fn probe(&mut self, addr: u64) -> LookupResult {
        self.accesses += 1;
        self.tick += 1;
        let line = self.line_of(addr);
        let set = self.set_of(line);
        let base = set * self.cfg.ways;
        for w in 0..self.cfg.ways {
            let i = base + w;
            if self.valid[i] && self.tags[i] == line {
                self.lru[i] = self.tick;
                return LookupResult::Hit;
            }
        }
        self.misses += 1;
        LookupResult::Miss
    }

    /// Probe without perturbing state or statistics (testing/debug).
    pub fn peek(&self, addr: u64) -> LookupResult {
        let line = self.line_of(addr);
        let set = self.set_of(line);
        let base = set * self.cfg.ways;
        for w in 0..self.cfg.ways {
            let i = base + w;
            if self.valid[i] && self.tags[i] == line {
                return LookupResult::Hit;
            }
        }
        LookupResult::Miss
    }

    /// Install the line containing `addr`, evicting the set's LRU way if
    /// necessary. Returns the evicted line's base address, if any.
    pub fn fill(&mut self, addr: u64) -> Option<u64> {
        self.tick += 1;
        let line = self.line_of(addr);
        let set = self.set_of(line);
        let base = set * self.cfg.ways;
        // Already present (merged fill): refresh.
        for w in 0..self.cfg.ways {
            let i = base + w;
            if self.valid[i] && self.tags[i] == line {
                self.lru[i] = self.tick;
                return None;
            }
        }
        // Invalid way first.
        for w in 0..self.cfg.ways {
            let i = base + w;
            if !self.valid[i] {
                self.valid[i] = true;
                self.tags[i] = line;
                self.lru[i] = self.tick;
                return None;
            }
        }
        // Evict LRU.
        let victim = (0..self.cfg.ways)
            .map(|w| base + w)
            .min_by_key(|&i| self.lru[i])
            .expect("ways > 0");
        let evicted = self.tags[victim] << self.line_shift;
        self.tags[victim] = line;
        self.lru[victim] = self.tick;
        Some(evicted)
    }

    /// Accesses performed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Misses observed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate over all accesses (0 when idle).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// Timing outcome of a hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Cycle at which the data is available to the pipeline.
    pub data_ready: u64,
    /// L1 missed.
    pub l1_miss: bool,
    /// L2 was accessed and missed (went to memory).
    pub l2_miss: bool,
    /// A next-line prefetch was launched alongside this access.
    pub prefetched: bool,
}

/// A two-level hierarchy: a private L1 in front of a shared L2 in front of
/// fixed-latency memory. The instruction and data sides each own one of
/// these (sharing the L2 between them is modelled by identical L2 contents
/// pressure being negligible for the synthetic workloads — documented in
/// DESIGN.md).
///
/// # Example
///
/// ```
/// use dcg_sim::{CacheHierarchy, SimConfig};
///
/// let cfg = SimConfig::baseline_8wide();
/// let mut d = CacheHierarchy::new(cfg.dcache, cfg.l2, cfg.mem_latency);
/// let cold = d.access(0x8000, 0);
/// assert!(cold.l1_miss && cold.l2_miss);
/// assert_eq!(cold.data_ready, 2 + 12 + 100); // L1 + L2 + memory
/// let warm = d.access(0x8000, cold.data_ready + 1);
/// assert!(!warm.l1_miss);
/// ```
#[derive(Debug)]
pub struct CacheHierarchy {
    l1: CacheArray,
    l2: CacheArray,
    mem_latency: u32,
    /// Outstanding L1 line fills: line -> fill completion cycle.
    l1_pending: HashMap<u64, u64>,
    /// Outstanding L2 line fills.
    l2_pending: HashMap<u64, u64>,
    l2_accesses: u64,
    l2_misses_seen: u64,
    prefetch_next_line: bool,
    prefetches: u64,
}

impl CacheHierarchy {
    /// Build a hierarchy from the two level configurations and the memory
    /// latency.
    pub fn new(l1: CacheConfig, l2: CacheConfig, mem_latency: u32) -> CacheHierarchy {
        CacheHierarchy {
            l1: CacheArray::new(l1),
            l2: CacheArray::new(l2),
            mem_latency,
            l1_pending: HashMap::new(),
            l2_pending: HashMap::new(),
            l2_accesses: 0,
            l2_misses_seen: 0,
            prefetch_next_line: false,
            prefetches: 0,
        }
    }

    /// Enable the tagged next-line prefetcher: every demand miss also
    /// launches a fill for the following line (an extension knob — the
    /// paper's Table-1 machine has no prefetcher).
    pub fn with_next_line_prefetch(mut self) -> CacheHierarchy {
        self.prefetch_next_line = true;
        self
    }

    /// Next-line prefetches launched so far.
    pub fn prefetches(&self) -> u64 {
        self.prefetches
    }

    /// Access `addr` at `cycle`; returns when data is ready and which
    /// levels missed. Writes allocate like reads (write-allocate policy);
    /// write-back traffic is not timed (write buffers hide it).
    pub fn access(&mut self, addr: u64, cycle: u64) -> AccessOutcome {
        let l1_line = addr >> self.l1.line_shift;
        let l1_lat = u64::from(self.l1.config().latency);

        // Merge with an in-flight fill for this line, if newer than a hit.
        if let Some(&fill) = self.l1_pending.get(&l1_line) {
            if fill > cycle {
                return AccessOutcome {
                    data_ready: fill.max(cycle + l1_lat),
                    l1_miss: true,
                    l2_miss: false,
                    prefetched: false,
                };
            }
            // The fill already landed (lines are installed eagerly at miss
            // time); just retire the MSHR entry.
            self.l1_pending.remove(&l1_line);
        }

        match self.l1.probe(addr) {
            LookupResult::Hit => AccessOutcome {
                data_ready: cycle + l1_lat,
                l1_miss: false,
                l2_miss: false,
                prefetched: false,
            },
            LookupResult::Miss => {
                let (l2_ready, l2_miss) = self.access_l2(addr, cycle + l1_lat);
                let data_ready = l2_ready;
                self.l1_pending.insert(l1_line, data_ready);
                // Install eagerly; residency from 'now' is a fine
                // approximation since timing comes from the pending map.
                self.l1.fill(addr);
                let prefetched = self.maybe_prefetch(addr, cycle + l1_lat);
                AccessOutcome {
                    data_ready,
                    l1_miss: true,
                    l2_miss,
                    prefetched,
                }
            }
        }
    }

    /// Launch a next-line fill on a demand miss, if enabled and not
    /// already resident or in flight. Returns whether one was launched.
    fn maybe_prefetch(&mut self, addr: u64, cycle: u64) -> bool {
        if !self.prefetch_next_line {
            return false;
        }
        let next =
            addr.wrapping_add(self.l1.config().line_bytes) & !(self.l1.config().line_bytes - 1);
        let line = next >> self.l1.line_shift;
        if self.l1_pending.contains_key(&line) || self.l1.peek(next) == LookupResult::Hit {
            return false;
        }
        let (ready, _) = self.access_l2(next, cycle);
        self.l1_pending.insert(line, ready);
        self.l1.fill(next);
        self.prefetches += 1;
        true
    }

    fn access_l2(&mut self, addr: u64, cycle: u64) -> (u64, bool) {
        self.l2_accesses += 1;
        let l2_line = addr >> self.l2.line_shift;
        let l2_lat = u64::from(self.l2.config().latency);

        if let Some(&fill) = self.l2_pending.get(&l2_line) {
            if fill > cycle {
                return (fill.max(cycle + l2_lat), true);
            }
            self.l2_pending.remove(&l2_line);
        }

        match self.l2.probe(addr) {
            LookupResult::Hit => (cycle + l2_lat, false),
            LookupResult::Miss => {
                self.l2_misses_seen += 1;
                let ready = cycle + l2_lat + u64::from(self.mem_latency);
                self.l2_pending.insert(l2_line, ready);
                self.l2.fill(addr);
                (ready, true)
            }
        }
    }

    /// The L1 tag array (for statistics).
    pub fn l1(&self) -> &CacheArray {
        &self.l1
    }

    /// The L2 tag array (for statistics).
    pub fn l2(&self) -> &CacheArray {
        &self.l2
    }

    /// L2 accesses observed (equals L1 misses routed down).
    pub fn l2_accesses(&self) -> u64 {
        self.l2_accesses
    }

    /// L2 misses observed (went to main memory).
    pub fn l2_misses(&self) -> u64 {
        self.l2_misses_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_l1() -> CacheConfig {
        CacheConfig {
            size_bytes: 1 << 10, // 1 KB
            ways: 2,
            line_bytes: 32,
            latency: 2,
        }
    }

    fn small_l2() -> CacheConfig {
        CacheConfig {
            size_bytes: 8 << 10,
            ways: 4,
            line_bytes: 64,
            latency: 12,
        }
    }

    #[test]
    fn array_hit_after_fill() {
        let mut c = CacheArray::new(small_l1());
        assert_eq!(c.probe(0x1000), LookupResult::Miss);
        c.fill(0x1000);
        assert_eq!(c.probe(0x1000), LookupResult::Hit);
        assert_eq!(c.probe(0x101f), LookupResult::Hit, "same line");
        assert_eq!(c.probe(0x1020), LookupResult::Miss, "next line");
        assert_eq!(c.accesses(), 4);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn array_lru_eviction() {
        let mut c = CacheArray::new(small_l1()); // 16 sets, 2 ways
        let set_stride = 16 * 32; // same set every 512 bytes
        c.fill(0x0);
        c.fill(set_stride);
        // Touch the first line so the second becomes LRU.
        assert_eq!(c.probe(0x0), LookupResult::Hit);
        let evicted = c.fill(2 * set_stride);
        assert_eq!(evicted, Some(set_stride));
        assert_eq!(c.peek(0x0), LookupResult::Hit, "MRU way survives");
        assert_eq!(c.peek(set_stride), LookupResult::Miss, "LRU way evicted");
    }

    #[test]
    fn peek_does_not_perturb() {
        let mut c = CacheArray::new(small_l1());
        c.fill(0x40);
        let (a, m) = (c.accesses(), c.misses());
        assert_eq!(c.peek(0x40), LookupResult::Hit);
        assert_eq!(c.peek(0x4000), LookupResult::Miss);
        assert_eq!((c.accesses(), c.misses()), (a, m));
    }

    #[test]
    fn fill_same_line_twice_no_evict() {
        let mut c = CacheArray::new(small_l1());
        assert_eq!(c.fill(0x80), None);
        assert_eq!(c.fill(0x80), None, "refresh, not duplicate");
    }

    #[test]
    fn hierarchy_l1_hit_latency() {
        let mut h = CacheHierarchy::new(small_l1(), small_l2(), 100);
        let first = h.access(0x2000, 10);
        assert!(first.l1_miss && first.l2_miss);
        assert_eq!(first.data_ready, 10 + 2 + 12 + 100);

        let warm = h.access(0x2000, first.data_ready + 1);
        assert!(!warm.l1_miss);
        assert_eq!(warm.data_ready, first.data_ready + 1 + 2);
    }

    #[test]
    fn hierarchy_l2_hit_after_l1_eviction() {
        let mut h = CacheHierarchy::new(small_l1(), small_l2(), 100);
        let mut t = 0;
        let a = h.access(0x0, t);
        t = a.data_ready + 1;
        // Evict 0x0 from L1 by filling its set with two more lines.
        let stride = 16 * 32;
        for k in 1..=2u64 {
            let r = h.access(k * stride, t);
            t = r.data_ready + 1;
        }
        let back = h.access(0x0, t);
        assert!(back.l1_miss, "line was evicted from L1");
        assert!(!back.l2_miss, "line still resident in L2");
        assert_eq!(back.data_ready, t + 2 + 12);
    }

    #[test]
    fn mshr_merges_secondary_miss() {
        let mut h = CacheHierarchy::new(small_l1(), small_l2(), 100);
        let first = h.access(0x3000, 0);
        assert!(first.l1_miss);
        // Secondary miss to the same line two cycles later merges with the
        // outstanding fill rather than paying the full latency again.
        let second = h.access(0x3008, 2);
        assert!(second.l1_miss);
        assert_eq!(second.data_ready, first.data_ready);
        // After the fill lands, it hits.
        let third = h.access(0x3000, first.data_ready + 5);
        assert!(!third.l1_miss);
    }

    #[test]
    fn next_line_prefetch_turns_streaming_misses_into_hits() {
        let mut plain = CacheHierarchy::new(small_l1(), small_l2(), 100);
        let mut pf = CacheHierarchy::new(small_l1(), small_l2(), 100).with_next_line_prefetch();
        // Stream line-by-line with long gaps so fills land before reuse.
        let mut t = 0u64;
        for k in 0..32u64 {
            let addr = 0x8000 + k * 32;
            let a = plain.access(addr, t);
            let b = pf.access(addr, t);
            t = a.data_ready.max(b.data_ready) + 200;
        }
        assert!(pf.prefetches() > 0);
        assert!(
            pf.l1().misses() < plain.l1().misses(),
            "prefetched stream must miss less: {} vs {}",
            pf.l1().misses(),
            plain.l1().misses()
        );
    }

    #[test]
    fn prefetch_does_not_duplicate_resident_lines() {
        let mut pf = CacheHierarchy::new(small_l1(), small_l2(), 100).with_next_line_prefetch();
        let first = pf.access(0x1000, 0);
        assert!(first.prefetched, "miss launches a next-line prefetch");
        // Re-missing near the same area must not re-prefetch a resident or
        // pending line.
        let again = pf.access(0x1000, first.data_ready + 1);
        assert!(!again.l1_miss);
        assert_eq!(pf.prefetches(), 1);
    }

    #[test]
    fn miss_rate_accounting() {
        let mut h = CacheHierarchy::new(small_l1(), small_l2(), 50);
        let mut t = 0;
        for i in 0..64u64 {
            let r = h.access(i * 4096, t);
            t = r.data_ready + 1;
        }
        assert!(h.l1().miss_rate() > 0.9, "streaming pattern misses L1");
        assert_eq!(h.l2_accesses(), h.l1().misses());
        assert!(h.l2_misses() > 0);
    }
}
