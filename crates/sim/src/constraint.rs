//! Dynamic resource constraints.
//!
//! DCG never restricts resources (it only gates clocks to blocks that are
//! already idle), but the PLB baseline *does*: its low-power modes narrow
//! the effective issue width and disable execution-unit instances (paper
//! §4.3). The simulator re-reads its [`ResourceConstraints`] every cycle so
//! a policy can switch modes at window boundaries.

use dcg_isa::FuClass;

use crate::config::SimConfig;

/// Per-cycle resource limits applied by a power-management policy.
///
/// # Example
///
/// ```
/// use dcg_isa::FuClass;
/// use dcg_sim::{ResourceConstraints, SimConfig};
///
/// let cfg = SimConfig::baseline_8wide();
/// // PLB's 4-wide mode (paper §4.3).
/// let wide4 = ResourceConstraints::unrestricted(&cfg)
///     .with_issue_width(4)
///     .with_fetch_width(4)
///     .with_enabled(FuClass::IntAlu, 3);
/// assert!(wide4.validate(&cfg).is_ok());
/// assert_eq!(wide4.enabled(FuClass::IntAlu), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceConstraints {
    /// Maximum instructions selected per cycle (≤ the configured width).
    pub issue_width: usize,
    /// Maximum instructions fetched per cycle (≤ the configured width).
    /// PLB's low-power modes narrow the whole machine, front end included.
    pub fetch_width: usize,
    /// Enabled instance count per unit class (instances
    /// `enabled..count` are disabled), indexed by [`FuClass::index`].
    pub fu_enabled: [usize; FuClass::COUNT],
}

impl ResourceConstraints {
    /// No restrictions: the full configured machine.
    pub fn unrestricted(config: &SimConfig) -> ResourceConstraints {
        let mut fu_enabled = [0usize; FuClass::COUNT];
        for c in FuClass::ALL {
            fu_enabled[c.index()] = config.fu_count(c);
        }
        ResourceConstraints {
            issue_width: config.issue_width,
            fetch_width: config.fetch_width,
            fu_enabled,
        }
    }

    /// Enabled instances of `class`.
    pub fn enabled(&self, class: FuClass) -> usize {
        self.fu_enabled[class.index()]
    }

    /// Builder-style: set the enabled instance count for `class`.
    pub fn with_enabled(mut self, class: FuClass, n: usize) -> ResourceConstraints {
        self.fu_enabled[class.index()] = n;
        self
    }

    /// Builder-style: set the issue-width limit.
    pub fn with_issue_width(mut self, width: usize) -> ResourceConstraints {
        self.issue_width = width;
        self
    }

    /// Builder-style: set the fetch-width limit.
    pub fn with_fetch_width(mut self, width: usize) -> ResourceConstraints {
        self.fetch_width = width;
        self
    }

    /// Validate against a configuration.
    ///
    /// # Errors
    ///
    /// Every unit class must keep at least one enabled instance (disabling
    /// a whole class would deadlock instructions of that class) and the
    /// issue width must be positive.
    pub fn validate(&self, config: &SimConfig) -> Result<(), String> {
        if self.issue_width == 0 {
            return Err("issue width must be positive".into());
        }
        if self.issue_width > config.issue_width {
            return Err(format!(
                "issue width {} exceeds the machine width {}",
                self.issue_width, config.issue_width
            ));
        }
        if self.fetch_width == 0 || self.fetch_width > config.fetch_width {
            return Err(format!(
                "fetch width {} out of range 1..={}",
                self.fetch_width, config.fetch_width
            ));
        }
        for c in FuClass::ALL {
            let n = self.enabled(c);
            if n == 0 {
                return Err(format!("class {c} must keep at least one instance"));
            }
            if n > config.fu_count(c) {
                return Err(format!(
                    "class {c}: {n} enabled exceeds {} present",
                    config.fu_count(c)
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unrestricted_matches_config() {
        let cfg = SimConfig::baseline_8wide();
        let c = ResourceConstraints::unrestricted(&cfg);
        c.validate(&cfg).expect("valid");
        assert_eq!(c.issue_width, 8);
        assert_eq!(c.enabled(FuClass::IntAlu), 6);
        assert_eq!(c.enabled(FuClass::MemPort), 2);
    }

    #[test]
    fn plb_4wide_style_constraints_validate() {
        let cfg = SimConfig::baseline_8wide();
        let c = ResourceConstraints::unrestricted(&cfg)
            .with_issue_width(4)
            .with_enabled(FuClass::IntAlu, 3)
            .with_enabled(FuClass::IntMulDiv, 1)
            .with_enabled(FuClass::FpAlu, 2)
            .with_enabled(FuClass::FpMulDiv, 2);
        c.validate(&cfg).expect("valid 4-wide mode");
    }

    #[test]
    fn validation_rejects_bad_constraints() {
        let cfg = SimConfig::baseline_8wide();
        let base = ResourceConstraints::unrestricted(&cfg);
        assert!(base.with_issue_width(0).validate(&cfg).is_err());
        assert!(base.with_issue_width(9).validate(&cfg).is_err());
        assert!(base.with_enabled(FuClass::FpAlu, 0).validate(&cfg).is_err());
        assert!(base.with_enabled(FuClass::FpAlu, 5).validate(&cfg).is_err());
    }
}
