//! Manual sensitivity probe: which resource is binding?
//!
//! ```text
//! cargo test -p dcg-sim --release --test sensitivity_probe -- --ignored --nocapture
//! ```

use dcg_sim::{Processor, SimConfig};
use dcg_workloads::{Spec2000, SyntheticWorkload};

fn ipc(name: &str, cfg: SimConfig) -> f64 {
    let p = Spec2000::by_name(name).unwrap();
    let mut cpu = Processor::new(cfg, SyntheticWorkload::new(p, 42));
    cpu.run_until_commits(30_000, |_| {});
    let (c0, y0) = (cpu.stats().committed, cpu.stats().cycles);
    cpu.run_until_commits(150_000, |_| {});
    (cpu.stats().committed - c0) as f64 / (cpu.stats().cycles - y0) as f64
}

#[test]
#[ignore = "manual diagnostic tool (prints a table)"]
fn print_sensitivity() {
    println!(
        "{:<10} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "bench", "base", "alus+", "ports+", "rob+", "width+", "mem0"
    );
    for name in ["gzip", "bzip2", "twolf", "parser", "swim", "applu"] {
        let base = SimConfig::baseline_8wide();

        let mut alus = base.clone();
        alus.int_alus = 12;
        alus.fp_alus = 8;
        alus.fp_muldivs = 8;

        let mut ports = base.clone();
        ports.mem_ports = 4;

        let mut rob = base.clone();
        rob.rob_entries = 512;
        rob.iq_entries = 512;
        rob.lsq_entries = 256;

        let mut width = base.clone();
        width.fetch_width = 16;
        width.issue_width = 16;
        width.commit_width = 16;
        width.result_buses = 16;

        let mut mem0 = base.clone();
        mem0.mem_latency = 1;
        mem0.l2.latency = 1;

        println!(
            "{:<10} {:>6.2} {:>6.2} {:>6.2} {:>6.2} {:>6.2} {:>6.2}",
            name,
            ipc(name, base),
            ipc(name, alus),
            ipc(name, ports),
            ipc(name, rob),
            ipc(name, width),
            ipc(name, mem0),
        );
    }
}
