//! Property tests for the struct-of-arrays [`ActivityBlock`]: pushing any
//! sequence of consecutive [`CycleActivity`] records and extracting them
//! back is the identity, and the per-lane summary masks always agree with
//! the columns they summarize.

use dcg_isa::FuClass;
use dcg_sim::{ActivityBlock, CycleActivity, FuGrant, BLOCK_CYCLES};
use dcg_testkit::prop;

const GROUPS: usize = 6;

/// Generator for one arbitrary activity record (cycle filled in later so
/// blocks stay consecutive). Values straddle the varint single-byte
/// boundary and include empty/non-empty grant lists.
fn any_activity() -> prop::Gen<CycleActivity> {
    let counts = prop::tuple((
        prop::range(0u32..=300),
        prop::range(0u32..=300),
        prop::range(0u32..=8),
        prop::range(0u32..=8),
        prop::range(0u32..=8),
        prop::range(0u32..=4),
        prop::range(0u32..=4),
        prop::range(0u32..=6),
    ));
    let mem = prop::tuple((
        prop::range(0u32..=0b1111),
        prop::range(0u32..=4),
        prop::range(0u32..=4),
        prop::range(0u32..=200),
        prop::range(0u32..=200),
        prop::any_bool(),
        prop::any_bool(),
    ));
    let misc = prop::tuple((
        prop::range(0u32..=8),
        prop::range(0u32..=8),
        prop::range(0u32..=24),
        prop::range(0u32..=8),
        prop::range(0u32..=8),
    ));
    let advance = prop::tuple((
        prop::range(0u32..=8),
        prop::range(0u32..=64),
        prop::range(0u32..=256),
        prop::range(0u32..=64),
        prop::range(0u32..=2),
        prop::range(0u32..=8),
    ));
    let grants = prop::vec(
        prop::tuple((
            prop::range(0usize..FuClass::COUNT),
            prop::range(0usize..=7),
            prop::range(0u32..=4),
            prop::range(1u32..=5),
        )),
        0usize..=4,
    );
    let latches = prop::vec(prop::range(0u32..=200), GROUPS..=GROUPS);
    prop::tuple((counts, mem, misc, advance, grants, latches)).map(
        |(counts, mem, misc, advance, grants, latches)| {
            let (fetched, renamed, dispatched, issued, issued_fp, loads, stores, committed) =
                counts;
            let (port_mask, dl, ds, dm, l2, ia, im) = mem;
            let (bl, bm, rr, rw, bus) = misc;
            let (decode_ready, iq, rob, lsq, sp, rb2) = advance;
            CycleActivity {
                cycle: 0,
                fetched,
                renamed,
                dispatched,
                issued,
                issued_fp,
                issued_loads: loads,
                issued_stores: stores,
                committed,
                fu_active: [fetched & 7, renamed & 7, issued & 7, loads & 3, stores & 3],
                dcache_port_mask: port_mask,
                dcache_load_accesses: dl,
                dcache_store_accesses: ds,
                dcache_misses: dm,
                l2_accesses: l2,
                icache_access: ia,
                icache_miss: im,
                bpred_lookups: bl,
                bpred_mispredicts: bm,
                regfile_reads: rr,
                regfile_writes: rw,
                result_bus_used: bus,
                latch_occupancy: latches,
                grants: grants
                    .into_iter()
                    .map(|(class, instance, exec_start, active_len)| FuGrant {
                        class: FuClass::from_index(class).expect("index in range"),
                        instance,
                        exec_start,
                        active_len,
                    })
                    .collect(),
                decode_ready_next: decode_ready,
                iq_occupancy: iq,
                rob_occupancy: rob,
                lsq_occupancy: lsq,
                store_ports_next: sp,
                result_bus_in_2: rb2,
            }
        },
    )
}

#[test]
fn block_round_trips_any_activity() {
    let gen = prop::tuple((
        prop::vec(any_activity(), 1..=BLOCK_CYCLES),
        prop::range(1u64..=1_000_000),
    ));
    prop::check(
        "block_round_trips_any_activity",
        gen,
        |(mut acts, first)| {
            for (i, a) in acts.iter_mut().enumerate() {
                a.cycle = first + i as u64;
            }
            let mut block = ActivityBlock::new(GROUPS);
            for a in &acts {
                block.push(a);
            }
            assert_eq!(block.len(), acts.len());
            assert_eq!(block.first_cycle, first);

            let mut out = CycleActivity::default();
            for (i, a) in acts.iter().enumerate() {
                block.extract(i, &mut out);
                assert_eq!(&out, a, "extract({i}) must invert push");
            }

            // Summary lane masks agree with their columns, and lanes past
            // `len` stay clear.
            for i in 0..BLOCK_CYCLES {
                let bit = 1u64 << i;
                let a = acts.get(i);
                assert_eq!(
                    block.port_any & bit != 0,
                    a.is_some_and(|a| a.dcache_port_mask != 0)
                );
                assert_eq!(
                    block.bus_any & bit != 0,
                    a.is_some_and(|a| a.result_bus_used != 0)
                );
                assert_eq!(
                    block.icache_access_lanes & bit != 0,
                    a.is_some_and(|a| a.icache_access)
                );
                assert_eq!(
                    block.icache_miss_lanes & bit != 0,
                    a.is_some_and(|a| a.icache_miss)
                );
                for c in 0..FuClass::COUNT {
                    assert_eq!(
                        block.fu_any[c] & bit != 0,
                        a.is_some_and(|a| a.fu_active[c] != 0)
                    );
                }
                for g in 0..GROUPS {
                    assert_eq!(
                        block.latch_any[g] & bit != 0,
                        a.is_some_and(|a| a.latch_occupancy[g] != 0)
                    );
                }
            }

            // Clearing keeps capacity but resets every summary.
            block.clear(first + 10_000);
            assert!(block.is_empty());
            assert_eq!(block.port_any, 0);
            assert_eq!(block.bus_any, 0);
            assert_eq!(block.icache_access_lanes, 0);
            assert!(block.fu_any.iter().all(|&m| m == 0));
            assert!(block.latch_any.iter().all(|&m| m == 0));
            assert!(block.grants.is_empty());
        },
    );
}

#[test]
fn lane_range_matches_per_cycle_membership() {
    let gen = prop::tuple((prop::range(0usize..=64), prop::range(0usize..=64)));
    prop::check("lane_range_membership", gen, |(a, b)| {
        let (from, to) = if a <= b { (a, b) } else { (b, a) };
        let mask = ActivityBlock::lane_range(from, to);
        for i in 0..BLOCK_CYCLES {
            let inside = i >= from && i < to;
            assert_eq!(
                mask & (1u64 << i) != 0,
                inside,
                "lane {i} of range {from}..{to}"
            );
        }
    });
}
