//! Property-based tests of the pipeline substrate: structural invariants
//! must hold for *any* workload the generators can produce.

use dcg_isa::FuClass;
use dcg_sim::{Processor, SimConfig};
use dcg_testkit::prop::{self, Gen};
use dcg_workloads::{
    BenchmarkProfile, BranchModel, DepModel, MemoryModel, OpMix, SuiteKind, SyntheticWorkload,
};

/// An arbitrary *valid* benchmark profile.
fn arb_profile() -> Gen<BenchmarkProfile> {
    prop::tuple((
        0.0..0.4f64,   // fp weight
        0.05..0.35f64, // mem weight
        0.02..0.25f64, // branch fraction
        0.0..0.9f64,   // loop fraction
        2u32..64,      // avg trip
        0.0..1.0f64,   // biased taken prob
        0.0..0.3f64,   // p_cold
        0.0..0.3f64,   // pointer chase
        1.5..8.0f64,   // dep distance
        0.0..0.6f64,   // long range
        1usize..6,     // code blocks / 16
    ))
    .map(
        |(fp, mem, br, loopf, trip, bias, p_cold, chase, dist, long, blocks16)| {
            // Normalise so the integer-ALU remainder stays positive.
            let scale = (0.85f64 / (fp + mem + br)).min(1.0);
            let (fp, mem, br) = (fp * scale, mem * scale, br * scale);
            let br = br.max(0.02);
            let load = mem * 0.7;
            let store = mem * 0.3;
            let fp_alu = fp * 0.5;
            let fp_mul = fp * 0.45;
            let fp_div = fp * 0.05;
            let int_mul = 0.01;
            let int_div = 0.002;
            let int_alu = 1.0 - (load + store + fp_alu + fp_mul + fp_div + int_mul + int_div + br);
            BenchmarkProfile {
                name: "prop",
                suite: if fp > 0.05 {
                    SuiteKind::Fp
                } else {
                    SuiteKind::Int
                },
                mix: OpMix::from_parts(
                    int_alu, int_mul, int_div, fp_alu, fp_mul, fp_div, load, store, br,
                ),
                branches: BranchModel {
                    loop_fraction: loopf.min(0.95),
                    avg_trip: trip,
                    biased_taken_prob: bias,
                    call_fraction: (1.0 - loopf).min(0.1),
                },
                memory: MemoryModel {
                    hot_bytes: 32 << 10,
                    warm_bytes: 1 << 20,
                    cold_bytes: 32 << 20,
                    p_hot: (1.0 - p_cold) * 0.9,
                    p_warm: (1.0 - p_cold) * 0.1,
                    pointer_chase: chase,
                },
                deps: DepModel {
                    mean_distance: dist,
                    long_range_fraction: long,
                },
                code_blocks: blocks16 * 16,
            }
        },
    )
    .filter(|p| p.validate().is_ok())
}

/// The pipeline never wedges, never over-commits, and keeps all activity
/// within structural bounds, for any valid workload.
#[test]
fn structural_invariants_hold() {
    prop::check(
        "structural_invariants_hold",
        prop::tuple((arb_profile(), 0u64..1000)),
        |(profile, seed)| {
            let cfg = SimConfig::baseline_8wide();
            let mut cpu = Processor::new(cfg.clone(), SyntheticWorkload::new(profile, seed));
            let mut issued_total = 0u64;
            let mut committed_total = 0u64;
            for _ in 0..4_000 {
                let act = cpu.step();
                assert!(act.fetched as usize <= cfg.fetch_width);
                assert!(act.issued as usize <= cfg.issue_width);
                assert!(act.committed as usize <= cfg.commit_width);
                assert!(act.result_bus_used as usize <= cfg.result_buses);
                for c in FuClass::ALL {
                    let mask = act.fu_active[c.index()];
                    assert!(
                        mask < (1 << cfg.fu_count(c)),
                        "class {c} mask {mask:#b} exceeds {} instances",
                        cfg.fu_count(c)
                    );
                }
                assert!(act.dcache_port_mask < (1 << cfg.mem_ports));
                for occ in &act.latch_occupancy {
                    assert!(*occ as usize <= cfg.issue_width);
                }
                issued_total += u64::from(act.issued);
                committed_total += u64::from(act.committed);
                // Commit never outruns issue.
                assert!(committed_total <= issued_total);
            }
            // The machine makes progress on every workload.
            assert!(
                committed_total > 0,
                "no instruction committed in 4000 cycles"
            );
            // In-flight work is bounded by the window.
            assert!(issued_total - committed_total <= cfg.rob_entries as u64);
        },
    );
}

/// Issue order respects data dependences indirectly: the one-hot pipe
/// signals always match the latch occupancies the paper derives from
/// them (delays 1..4 behind issue).
#[test]
fn backend_latch_occupancy_equals_delayed_issue() {
    prop::check(
        "backend_latch_occupancy_equals_delayed_issue",
        prop::tuple((arb_profile(), 0u64..100)),
        |(profile, seed)| {
            let cfg = SimConfig::baseline_8wide();
            let mut cpu = Processor::new(cfg, SyntheticWorkload::new(profile, seed));
            let groups = cpu.latch_groups().clone();
            let mut issued_hist: Vec<u32> = Vec::new();
            for _ in 0..2_000 {
                let act = cpu.step();
                issued_hist.push(act.issued);
                let n = issued_hist.len();
                for (g, spec) in groups.specs().iter().enumerate() {
                    if spec.gated && spec.source == dcg_sim::FlowSource::Issued {
                        let d = spec.delay as usize;
                        let expect = if n > d { issued_hist[n - 1 - d] } else { 0 };
                        assert_eq!(
                            act.latch_occupancy[g], expect,
                            "group {} at cycle {}",
                            &spec.name, act.cycle
                        );
                    }
                }
            }
        },
    );
}
