//! Calibration probe: prints per-benchmark IPC and utilization numbers for
//! comparison with the paper's §5 targets (integer units ≈ 35 % / 25 %,
//! FP units ≈ 0 / 23 %, latches ≈ 60 %, memory ports ≈ 40 %, result bus
//! ≈ 40 %). Run with:
//!
//! ```text
//! cargo test -p dcg-sim --test calibration_probe -- --ignored --nocapture
//! ```

use dcg_sim::{Processor, SimConfig};
use dcg_workloads::{Spec2000, SyntheticWorkload};

#[test]
#[ignore = "manual calibration tool (prints a table)"]
fn print_utilization_table() {
    let cfg = SimConfig::baseline_8wide();
    println!(
        "{:<10} {:>5} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "bench", "ipc", "int-u", "fp-u", "port-u", "bus-u", "latch-u", "dL1miss", "bpmiss"
    );
    for p in Spec2000::all() {
        let stream = SyntheticWorkload::new(p, 42);
        let mut cpu = Processor::new(cfg.clone(), stream);
        cpu.run_until_commits(50_000, |_| {}); // warm-up
        let warm_cycles = cpu.stats().cycles;
        let warm_committed = cpu.stats().committed;
        cpu.run_until_commits(300_000, |_| {});
        let s = cpu.stats();
        let ipc = (s.committed - warm_committed) as f64 / (s.cycles - warm_cycles) as f64;
        println!(
            "{:<10} {:>5.2} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}%",
            p.name,
            ipc,
            100.0 * s.int_unit_utilization(&cfg),
            100.0 * s.fp_unit_utilization(&cfg),
            100.0 * s.port_utilization(&cfg),
            100.0 * s.result_bus_utilization(&cfg),
            100.0 * s.mean_latch_utilization(&cfg),
            100.0 * s.dcache_miss_rate(),
            100.0 * s.mispredict_rate(),
        );
    }
}
