//! Manual stall-breakdown probe: where do the cycles go?
//!
//! ```text
//! cargo test -p dcg-sim --release --test stall_probe -- --ignored --nocapture
//! ```

use dcg_sim::{Processor, SimConfig};
use dcg_workloads::{Spec2000, SyntheticWorkload};

#[test]
#[ignore = "manual diagnostic tool (prints a table)"]
fn print_stall_breakdown() {
    let cfg = SimConfig::baseline_8wide();
    println!(
        "{:<10} {:>5} {:>6} {:>6} {:>6} {:>7} {:>7} {:>7} {:>7}",
        "bench", "ipc", "fet/c", "iss/c", "com/c", "fet0%", "iss0%", "com0%", "disp0%"
    );
    for name in ["gzip", "bzip2", "perlbmk", "vortex", "mcf", "swim", "mesa"] {
        let p = Spec2000::by_name(name).unwrap();
        let stream = SyntheticWorkload::new(p, 42);
        let mut cpu = Processor::new(cfg.clone(), stream);
        cpu.run_until_commits(50_000, |_| {});
        let (mut f, mut i, mut c, mut d) = (0u64, 0u64, 0u64, 0u64);
        let (mut f0, mut i0, mut c0, mut d0) = (0u64, 0u64, 0u64, 0u64);
        let mut cycles = 0u64;
        cpu.run_until_commits(200_000, |act| {
            cycles += 1;
            f += u64::from(act.fetched);
            i += u64::from(act.issued);
            c += u64::from(act.committed);
            d += u64::from(act.dispatched);
            f0 += u64::from(act.fetched == 0);
            i0 += u64::from(act.issued == 0);
            c0 += u64::from(act.committed == 0);
            d0 += u64::from(act.dispatched == 0);
        });
        println!(
            "{:<10} {:>5.2} {:>6.2} {:>6.2} {:>6.2} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}%",
            name,
            c as f64 / cycles as f64,
            f as f64 / cycles as f64,
            i as f64 / cycles as f64,
            c as f64 / cycles as f64,
            100.0 * f0 as f64 / cycles as f64,
            100.0 * i0 as f64 / cycles as f64,
            100.0 * c0 as f64 / cycles as f64,
            100.0 * d0 as f64 / cycles as f64,
        );
        let _ = d;
    }
}
