//! # dcg-repro — Deterministic Clock Gating (HPCA 2003), reproduced in Rust
//!
//! A full reproduction of *"Deterministic Clock Gating for Microprocessor
//! Power Reduction"* (Hai Li, Swarup Bhunia, Yiran Chen, T. N. Vijaykumar,
//! Kaushik Roy — HPCA 2003): the DCG technique, the Pipeline Balancing
//! (PLB) baseline, a cycle-accurate 8-wide out-of-order superscalar
//! simulator, a Wattch-style power model at 0.18 µm, synthetic SPEC2000
//! workloads, and a harness regenerating every figure in the paper's
//! evaluation.
//!
//! This facade crate re-exports the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`isa`] | `dcg-isa` | Alpha-like instruction-set model |
//! | [`emu`] | `dcg-emu` | assembler + functional reference emulator |
//! | [`workloads`] | `dcg-workloads` | synthetic SPEC2000-like generators + real kernels |
//! | [`sim`] | `dcg-sim` | the out-of-order pipeline substrate |
//! | [`power`] | `dcg-power` | the per-component energy model |
//! | [`core`] | `dcg-core` | **DCG** (the paper's contribution) + PLB |
//! | [`trace`] | `dcg-trace` | compact instruction-trace record/replay |
//! | [`experiments`] | `dcg-experiments` | figure/table regeneration |
//! | [`server`] | `dcg-server` | crash-resumable experiment daemon + client |
//!
//! ## Quick start
//!
//! ```
//! use dcg_repro::core::{run_passive, Dcg, NoGating, RunLength};
//! use dcg_repro::sim::{LatchGroups, SimConfig};
//! use dcg_repro::workloads::{Spec2000, SyntheticWorkload};
//!
//! let cfg = SimConfig::baseline_8wide();
//! let groups = LatchGroups::new(&cfg.depth);
//! let mut baseline = NoGating::new(&cfg, &groups);
//! let mut dcg = Dcg::new(&cfg, &groups);
//! let workload = SyntheticWorkload::new(Spec2000::by_name("gzip").unwrap(), 1);
//! let run = run_passive(&cfg, workload, RunLength::quick(), &mut [&mut baseline, &mut dcg]);
//! println!(
//!     "DCG saves {:.1} % of processor power at zero performance cost",
//!     100.0 * run.outcomes[1].report.power_saving_vs(&run.outcomes[0].report)
//! );
//! ```
//!
//! See `examples/` for runnable scenarios and `DESIGN.md`/`EXPERIMENTS.md`
//! for the reproduction methodology and paper-vs-measured numbers.

#![deny(missing_docs)]

pub use dcg_core as core;
pub use dcg_emu as emu;
pub use dcg_experiments as experiments;
pub use dcg_isa as isa;
pub use dcg_power as power;
pub use dcg_server as server;
pub use dcg_sim as sim;
pub use dcg_trace as trace;
pub use dcg_workloads as workloads;
