//! Robustness: degenerate instruction streams must neither wedge the
//! pipeline nor violate the DCG audit.

use dcg_repro::core::{run_passive, Dcg, NoGating, RunLength};
use dcg_repro::isa::{ArchReg, BranchInfo, BranchKind, Inst, MemRef, OpClass};
use dcg_repro::sim::{LatchGroups, Processor, SimConfig};
use dcg_repro::workloads::ReplayStream;

fn run_stream(trace: Vec<Inst>, commits: u64) -> f64 {
    let mut cpu = Processor::new(
        SimConfig::baseline_8wide(),
        ReplayStream::new("adversarial", trace),
    );
    cpu.run_until_commits(commits, |_| {});
    cpu.stats().ipc()
}

fn dcg_audit_clean(trace: Vec<Inst>, commits: u64) {
    let cfg = SimConfig::baseline_8wide();
    let groups = LatchGroups::new(&cfg.depth);
    let mut baseline = NoGating::new(&cfg, &groups);
    let mut dcg = Dcg::new(&cfg, &groups);
    // run_passive panics on any audit violation.
    let run = run_passive(
        &cfg,
        ReplayStream::new("adversarial", trace),
        RunLength {
            warmup_insts: commits / 4,
            measure_insts: commits,
        },
        &mut [&mut baseline, &mut dcg],
    );
    assert_eq!(run.outcomes[1].audit.violations, 0);
}

/// Straight-line block with a wrap-around jump at the end.
fn with_wrap(mut body: Vec<Inst>) -> Vec<Inst> {
    let pc = 4 * body.len() as u64;
    body.push(Inst::branch(
        pc,
        BranchInfo {
            kind: BranchKind::Jump,
            taken: true,
            target: 0,
        },
    ));
    body
}

#[test]
fn all_divides() {
    // Worst-case unpipelined contention: a wall of 20-cycle divides.
    let body: Vec<Inst> = (0..16)
        .map(|k| {
            Inst::alu(4 * k, OpClass::IntDiv)
                .with_dest(ArchReg::int(6 + (k % 20) as u8))
                .with_srcs([Some(ArchReg::int(0)), None])
        })
        .collect();
    let trace = with_wrap(body);
    let ipc = run_stream(trace.clone(), 2_000);
    assert!(ipc > 0.0 && ipc < 0.2);
    dcg_audit_clean(trace, 2_000);
}

#[test]
fn all_stores() {
    // Stores produce no values and drain through commit-time port slots.
    let body: Vec<Inst> = (0..32)
        .map(|k| {
            Inst::store(4 * k, MemRef::new(0x1_0000 + 8 * k, 8))
                .with_srcs([Some(ArchReg::int(0)), Some(ArchReg::int(1))])
        })
        .collect();
    let trace = with_wrap(body);
    let ipc = run_stream(trace.clone(), 10_000);
    // Two ports bound store throughput; commit scheduling costs a bit.
    assert!(ipc > 0.5 && ipc <= 2.1, "store wall IPC {ipc:.2}");
    dcg_audit_clean(trace, 10_000);
}

#[test]
fn all_taken_branches() {
    // Every instruction is a taken branch: fetch groups collapse to one
    // instruction per cycle at best.
    let trace: Vec<Inst> = (0..64)
        .map(|k| {
            let pc = 4 * k;
            let target = (4 * (k + 1)) % 256;
            Inst::branch(
                pc,
                BranchInfo {
                    kind: BranchKind::Jump,
                    taken: true,
                    target,
                },
            )
        })
        .collect();
    let ipc = run_stream(trace.clone(), 10_000);
    assert!(ipc > 0.4 && ipc <= 1.05, "branch wall IPC {ipc:.2}");
    dcg_audit_clean(trace, 10_000);
}

#[test]
fn zero_register_sinks() {
    // Writes to the zero register allocate no rename mapping; readers of
    // never-written registers are always ready. Nothing may deadlock.
    let body: Vec<Inst> = (0..16)
        .map(|k| {
            Inst::alu(4 * k, OpClass::IntAlu)
                .with_dest(ArchReg::INT_ZERO)
                .with_srcs([Some(ArchReg::int(17)), Some(ArchReg::INT_ZERO)])
        })
        .collect();
    let trace = with_wrap(body);
    let ipc = run_stream(trace.clone(), 20_000);
    assert!(ipc > 3.0, "independent zero-sink ops should fly: {ipc:.2}");
    dcg_audit_clean(trace, 20_000);
}

#[test]
fn same_word_store_load_ping_pong() {
    // Alternating store/load on one word: maximal forwarding pressure.
    let mut body = Vec::new();
    for k in 0..16u64 {
        let base = 8 * k;
        body.push(
            Inst::store(base, MemRef::new(0x9000, 8))
                .with_srcs([Some(ArchReg::int(0)), Some(ArchReg::int(1))]),
        );
        body.push(
            Inst::load(base + 4, MemRef::new(0x9000, 8))
                .with_dest(ArchReg::int(6 + (k % 20) as u8))
                .with_srcs([Some(ArchReg::int(0)), None]),
        );
    }
    let trace = with_wrap(body);
    let ipc = run_stream(trace.clone(), 10_000);
    assert!(ipc > 0.5, "forwarding ping-pong must progress: {ipc:.2}");
    dcg_audit_clean(trace, 10_000);
}
