//! Differential emulated-vs-pipelined testing: the functional emulator is
//! the golden reference model, and the timing pipeline must retire exactly
//! its committed stream — same PCs, same operands, same resolved memory
//! addresses and branch behaviour, same register and memory writes — at
//! every pipeline depth. A deliberately broken program must fail the check
//! *loudly*, with a report naming the first mismatching instruction.

use dcg_repro::core::{run_passive, Dcg, FaultPlan, FaultyPolicy, RunLength};
use dcg_repro::emu::{AsmInst, Emulator, Funct, Program};
use dcg_repro::experiments::differential_check;
use dcg_repro::sim::{LatchGroups, SimConfig};
use dcg_repro::workloads::{Kernel, KERNEL_STEP_LIMIT};

/// The two depths the paper evaluates: the 8-stage baseline and the
/// 20-stage deep pipeline of Figure 17.
fn depths() -> [(&'static str, SimConfig); 2] {
    [
        ("baseline-8", SimConfig::baseline_8wide()),
        ("deep-20", SimConfig::deep_pipeline_20()),
    ]
}

#[test]
fn every_kernel_matches_the_emulator_at_both_depths() {
    for (depth, sim) in depths() {
        for k in Kernel::all() {
            let program = k.assemble();
            match differential_check(&sim, &program, &program) {
                Ok(n) => assert!(
                    n > 20_000,
                    "{} at {depth}: compared only {n} instructions",
                    k.name
                ),
                Err(d) => panic!("{} at {depth}: {d}", k.name),
            }
        }
    }
}

#[test]
fn every_kernel_reaches_its_expected_final_state() {
    for k in Kernel::all() {
        let (emu, records) = k.emulate();
        assert!(
            emu.halted(),
            "{}: kernel must halt within the step limit",
            k.name
        );
        assert!(
            records.len() > 20_000,
            "{}: kernel is too short to exercise the pipeline ({} insts)",
            k.name,
            records.len()
        );
        if let Err(e) = k.verify_final_state(&emu) {
            panic!("{}: final state mismatch: {e}", k.name);
        }
    }
}

/// Mutate one instruction of `p` such that the program still assembles,
/// still runs clean on the emulator, but computes something different.
/// Candidates that fault (e.g. a base-address flip breaking alignment) or
/// that change nothing observable are skipped.
fn sabotage(p: &Program) -> (usize, Program) {
    let golden = Emulator::new(p.clone())
        .run(KERNEL_STEP_LIMIT)
        .expect("the unmutated kernel runs clean");
    for (i, inst) in p.insts().iter().enumerate() {
        let live_dest = inst.dest.map(|d| !d.is_zero()).unwrap_or(false);
        if inst.funct != Funct::Add || !inst.uses_imm || !live_dest {
            continue;
        }
        // XOR with 8 preserves the alignment of any power-of-two-sized
        // access the immediate may be feeding.
        let broken = AsmInst {
            imm: inst.imm ^ 8,
            ..*inst
        };
        let mut mutated = p.clone();
        mutated.replace(i, broken);
        match Emulator::new(mutated.clone()).run(KERNEL_STEP_LIMIT) {
            Ok(records) if records != golden => return (i, mutated),
            _ => continue,
        }
    }
    panic!(
        "no benign single-instruction mutation found for `{}`",
        p.name()
    );
}

#[test]
fn a_single_instruction_fault_fails_loudly_in_every_kernel() {
    let sim = SimConfig::baseline_8wide();
    for k in Kernel::all() {
        let golden = k.assemble();
        let (victim, mutated) = sabotage(&golden);
        let err = match differential_check(&sim, &golden, &mutated) {
            Err(d) => d,
            Ok(n) => panic!(
                "{}: flipping the immediate of instruction {victim} went unnoticed \
                 over {n} compared instructions",
                k.name
            ),
        };
        // The report is structured, not a diff dump: it names the kernel,
        // the first divergent commit, and the facet that diverged.
        assert_eq!(err.kernel, k.name);
        assert!(
            !err.field.is_empty() && !err.expected.is_empty() && !err.got.is_empty(),
            "{}: divergence report is incomplete: {err:?}",
            k.name
        );
        let rendered = err.to_string();
        assert!(
            rendered.contains("first divergence") && rendered.contains(k.name),
            "{}: unhelpful divergence report: {rendered}",
            k.name
        );
    }
}

/// Gate-level fault smoke on a real-program stream: perturbing DCG's
/// decisions while a kernel drives the pipeline must never let a
/// violating block-cycle through (the safety net fails open instead).
#[test]
fn gate_faults_on_a_kernel_stream_never_violate() {
    let sim = SimConfig::baseline_8wide();
    let groups = LatchGroups::new(&sim.depth);
    let length = RunLength {
        warmup_insts: 500,
        measure_insts: 2_000,
    };
    let plan = FaultPlan::generate(0xDC6_0001, 9);
    let k = Kernel::by_name("sort").expect("sort kernel exists");
    let mut perturbed_somewhere = false;
    for spec in plan.faults.iter().filter(|s| s.point.is_gate_level()) {
        let mut inner = Dcg::new(&sim, &groups);
        let mut faulty = FaultyPolicy::new(&mut inner, *spec, &sim, &groups);
        let mut run = run_passive(&sim, k.stream(), length, &mut [&mut faulty]);
        let altered = faulty.altered();
        let out = run.outcomes.remove(0);
        assert_eq!(
            out.audit.violations,
            0,
            "fault {} ({}) let a violating block-cycle through",
            spec.id,
            spec.point.label()
        );
        perturbed_somewhere |= altered > 0 || out.safety.total_detected() > 0;
    }
    assert!(
        perturbed_somewhere,
        "no gate fault perturbed anything — the smoke test tested nothing"
    );
}
