//! Cycle-level sanity of the pipeline substrate, checked with hand-built
//! instruction sequences (replayed traces) whose timing is analytically
//! known.

use dcg_repro::isa::{ArchReg, Inst, MemRef, OpClass};
use dcg_repro::sim::{Processor, SimConfig};
use dcg_repro::workloads::ReplayStream;

fn ipc_of(trace: Vec<Inst>, commits: u64) -> f64 {
    let mut cpu = Processor::new(
        SimConfig::baseline_8wide(),
        ReplayStream::new("micro", trace),
    );
    cpu.run_until_commits(commits, |_| {});
    cpu.stats().ipc()
}

/// A long straight-line block of instructions at consecutive PCs, looping
/// via a final always-taken branch (predictable after warm-up).
fn loop_of(body: Vec<Inst>) -> Vec<Inst> {
    let mut trace = body;
    let pc = 4 * trace.len() as u64;
    trace.push(
        Inst::branch(pc, dcg_repro::isa::BranchInfo::conditional(true, 0))
            .with_srcs([Some(ArchReg::int(0)), None]),
    );
    trace
}

#[test]
fn dependent_chain_limits_ipc_to_one() {
    // r1 = r1 + r1, 63 times: every op depends on its predecessor, so the
    // core can sustain at most ~1 IPC regardless of width.
    let body: Vec<Inst> = (0..63)
        .map(|k| {
            Inst::alu(4 * k, OpClass::IntAlu)
                .with_dest(ArchReg::int(1))
                .with_srcs([Some(ArchReg::int(1)), None])
        })
        .collect();
    let ipc = ipc_of(loop_of(body), 30_000);
    assert!(
        ipc < 1.15,
        "serial chain must not exceed ~1 IPC, got {ipc:.2}"
    );
    assert!(
        ipc > 0.8,
        "serial chain should approach 1 IPC, got {ipc:.2}"
    );
}

#[test]
fn independent_ops_approach_alu_bandwidth() {
    // 60 independent adds, each to a distinct destination reading fixed
    // source registers: limited only by the 6 integer ALUs and the 8-wide
    // front end broken by the loop branch.
    let body: Vec<Inst> = (0..60)
        .map(|k| {
            Inst::alu(4 * k, OpClass::IntAlu)
                .with_dest(ArchReg::int(6 + (k % 24) as u8))
                .with_srcs([Some(ArchReg::int(0)), Some(ArchReg::int(1))])
        })
        .collect();
    let ipc = ipc_of(loop_of(body), 60_000);
    assert!(
        ipc > 4.0,
        "independent adds should reach most of the 6-ALU bandwidth, got {ipc:.2}"
    );
    assert!(ipc <= 6.2, "cannot beat the ALU count by much: {ipc:.2}");
}

#[test]
fn unpipelined_divides_throttle_throughput() {
    // Independent 20-cycle divides on 2 unpipelined units: at most
    // 2/20 = 0.1 divides per cycle can start.
    let body: Vec<Inst> = (0..32)
        .map(|k| {
            Inst::alu(4 * k, OpClass::IntDiv)
                .with_dest(ArchReg::int(6 + (k % 24) as u8))
                .with_srcs([Some(ArchReg::int(0)), Some(ArchReg::int(1))])
        })
        .collect();
    let ipc = ipc_of(loop_of(body), 5_000);
    assert!(
        ipc < 0.15,
        "divide throughput is 2 units / 20 cycles: got {ipc:.3}"
    );
}

#[test]
fn load_bandwidth_is_two_per_cycle() {
    // Independent L1-resident loads: capped by the two cache ports.
    let body: Vec<Inst> = (0..60)
        .map(|k| {
            Inst::load(4 * k, MemRef::new(0x1000 + 8 * (k % 16), 8))
                .with_dest(ArchReg::int(6 + (k % 24) as u8))
                .with_srcs([Some(ArchReg::int(0)), None])
        })
        .collect();
    let ipc = ipc_of(loop_of(body), 40_000);
    assert!(
        ipc > 1.6 && ipc < 2.1,
        "load throughput must sit at the 2-port limit, got {ipc:.2}"
    );
}

#[test]
fn store_to_load_forwarding_beats_memory_latency() {
    // store to X; load from X; consume. Without forwarding the load would
    // wait for the store's commit-time cache access; with forwarding the
    // loop runs at cache-hit speed.
    let body = vec![
        Inst::alu(0, OpClass::IntAlu)
            .with_dest(ArchReg::int(6))
            .with_srcs([Some(ArchReg::int(0)), None]),
        Inst::store(4, MemRef::new(0x2000, 8))
            .with_srcs([Some(ArchReg::int(0)), Some(ArchReg::int(6))]),
        Inst::load(8, MemRef::new(0x2000, 8))
            .with_dest(ArchReg::int(7))
            .with_srcs([Some(ArchReg::int(0)), None]),
        Inst::alu(12, OpClass::IntAlu)
            .with_dest(ArchReg::int(8))
            .with_srcs([Some(ArchReg::int(7)), None]),
    ];
    let ipc = ipc_of(loop_of(body), 10_000);
    assert!(
        ipc > 0.5,
        "forwarding should keep the loop moving, got {ipc:.2}"
    );
}

#[test]
fn cold_misses_crater_ipc() {
    // Dependent loads striding far beyond the L2: every access pays the
    // memory latency and the chain serialises them.
    let body: Vec<Inst> = (0..8)
        .map(|k| {
            Inst::load(4 * k, MemRef::new(0x4000_0000 + k * (8 << 20), 8))
                .with_dest(ArchReg::int(6 + k as u8))
                .with_srcs([
                    Some(ArchReg::int(if k == 0 { 0 } else { 5 + k as u8 })),
                    None,
                ])
        })
        .collect();
    let ipc = ipc_of(loop_of(body), 2_000);
    assert!(ipc < 0.5, "memory-bound chain must stall, got {ipc:.2}");
}

#[test]
fn mispredicted_branches_cost_roughly_the_table1_penalty() {
    // One static branch site in an if/else diamond. When its direction is
    // fixed the predictor learns it; when it is pseudo-random per
    // iteration it mispredicts ~50 % of the time. The trace stays
    // sequentially consistent because each iteration emits the block that
    // the branch actually went to.
    fn diamond_trace(pattern: impl Fn(u64) -> bool, iterations: u64) -> Vec<Inst> {
        let filler = |pc: u64, k: u64| {
            Inst::alu(pc, OpClass::IntAlu)
                .with_dest(ArchReg::int(6 + (k % 24) as u8))
                .with_srcs([Some(ArchReg::int(0)), None])
        };
        let mut insts = Vec::new();
        for i in 0..iterations {
            // Block A: pc 0..12, conditional branch at 12 (taken -> 32).
            for j in 0..3 {
                insts.push(filler(4 * j, i + j));
            }
            let taken = pattern(i);
            insts.push(
                Inst::branch(12, dcg_repro::isa::BranchInfo::conditional(taken, 32))
                    .with_srcs([Some(ArchReg::int(0)), None]),
            );
            // Block B (not-taken path) at 16..28 or B' (taken) at 32..44,
            // each ending with an unconditional jump back to 0.
            let base = if taken { 32 } else { 16 };
            for j in 0..3 {
                insts.push(filler(base + 4 * j, i + j + 7));
            }
            insts.push(Inst::branch(
                base + 12,
                dcg_repro::isa::BranchInfo {
                    kind: dcg_repro::isa::BranchKind::Jump,
                    taken: true,
                    target: 0,
                },
            ));
        }
        insts
    }
    // SplitMix64 finaliser: avalanche-quality bits that a 13-bit-history
    // gshare cannot learn (a structured sequence like a Weyl generator
    // *is* learnable and would not mispredict).
    fn noise(mut x: u64) -> bool {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (x ^ (x >> 31)) & 1 == 1
    }
    let easy = diamond_trace(|_| false, 4096);
    let hard = diamond_trace(noise, 4096);
    let easy_ipc = ipc_of(easy, 25_000);
    let hard_ipc = ipc_of(hard, 25_000);
    assert!(
        hard_ipc < 0.8 * easy_ipc,
        "mispredictions must hurt: easy {easy_ipc:.2} vs hard {hard_ipc:.2}"
    );
}
