//! Reproducibility: identical inputs give identical simulations, traces
//! survive the encode/replay round trip, and passive gating policies never
//! perturb timing.

use dcg_repro::core::{run_passive, Dcg, NoGating, RunLength};
use dcg_repro::isa::{decode_word, encode_word};
use dcg_repro::sim::{LatchGroups, Processor, SimConfig};
use dcg_repro::workloads::{InstStream, ReplayStream, Spec2000, SyntheticWorkload};

#[test]
fn identical_runs_produce_identical_statistics() {
    let cfg = SimConfig::baseline_8wide();
    let run = |seed: u64| {
        let mut cpu = Processor::new(
            cfg.clone(),
            SyntheticWorkload::new(Spec2000::by_name("parser").unwrap(), seed),
        );
        cpu.run_until_commits(30_000, |_| {});
        (
            cpu.cycle(),
            cpu.stats().issued,
            cpu.stats().dcache_misses,
            cpu.stats().mispredicts,
        )
    };
    assert_eq!(run(5), run(5), "same seed, same simulation");
    assert_ne!(run(5), run(6), "different seeds diverge");
}

#[test]
fn encoded_trace_replays_identically() {
    // Record a workload prefix through the binary trace encoding, then
    // replay it: the simulator must behave identically on the replay.
    let profile = Spec2000::by_name("gzip").unwrap();
    let mut gen = SyntheticWorkload::new(profile, 9);
    let trace: Vec<_> = (0..60_000).map(|_| gen.next_inst()).collect();

    // Round-trip every instruction through the 3-word encoding.
    let decoded: Vec<_> = trace
        .iter()
        .map(|i| decode_word(&encode_word(i)).expect("roundtrip"))
        .collect();
    assert_eq!(trace, decoded);

    let cfg = SimConfig::baseline_8wide();
    let mut direct = Processor::new(cfg.clone(), SyntheticWorkload::new(profile, 9));
    direct.run_until_commits(40_000, |_| {});
    let mut replayed = Processor::new(cfg, ReplayStream::new("replay", decoded));
    replayed.run_until_commits(40_000, |_| {});
    assert_eq!(direct.cycle(), replayed.cycle());
    assert_eq!(direct.stats().issued, replayed.stats().issued);
    assert_eq!(direct.stats().dcache_misses, replayed.stats().dcache_misses);
}

#[test]
fn passive_policies_do_not_perturb_timing() {
    // A bare simulation and a run_passive simulation with two observers
    // must agree cycle-for-cycle.
    let cfg = SimConfig::baseline_8wide();
    let profile = Spec2000::by_name("twolf").unwrap();

    let mut bare = Processor::new(cfg.clone(), SyntheticWorkload::new(profile, 4));
    bare.run_until_commits(25_000, |_| {});

    let groups = LatchGroups::new(&cfg.depth);
    let mut baseline = NoGating::new(&cfg, &groups);
    let mut dcg = Dcg::new(&cfg, &groups);
    let run = run_passive(
        &cfg,
        SyntheticWorkload::new(profile, 4),
        RunLength {
            warmup_insts: 0,
            measure_insts: 25_000,
        },
        &mut [&mut baseline, &mut dcg],
    );
    // run_passive may overshoot the commit target by at most one cycle's
    // worth of commits; compare cycle counts at equal committed counts.
    assert_eq!(bare.committed(), run.stats.committed);
    assert_eq!(bare.cycle(), run.stats.cycles);
}

/// Suite-level determinism: `Suite::run` fans benchmarks out across
/// threads, but two invocations with the same configuration must yield
/// byte-identical statistics and power reports (floats compared by bit
/// pattern, not approximate equality).
#[test]
fn suite_runs_are_byte_identical_across_invocations() {
    use dcg_repro::experiments::{ExperimentConfig, Suite};
    use dcg_repro::power::{Component, PowerReport};

    fn report_bits(r: &PowerReport) -> Vec<u64> {
        let mut v = vec![r.cycles(), r.committed(), r.total_pj().to_bits()];
        v.extend(Component::ALL.iter().map(|c| r.component_pj(*c).to_bits()));
        v
    }

    fn fingerprint(suite: &Suite) -> Vec<(String, String, Vec<u64>, Vec<u64>)> {
        suite
            .runs
            .iter()
            .map(|run| {
                (
                    run.profile.name.to_string(),
                    // SimStats is all integer counters, so its Debug
                    // rendering is an exact encoding.
                    format!("{:?}", run.stats),
                    report_bits(&run.baseline),
                    report_bits(&run.dcg.report),
                )
            })
            .collect()
    }

    let cfg = ExperimentConfig::quick();
    let a = Suite::run(&cfg, false);
    let b = Suite::run(&cfg, false);
    assert_eq!(fingerprint(&a), fingerprint(&b));
}
