//! The paper's two headline guarantees, verified end-to-end:
//!
//! 1. **No performance loss** — DCG never changes timing: the gated run is
//!    cycle-identical to the ungated baseline.
//! 2. **No lost opportunity** — on the deterministically-gated blocks
//!    (execution units, D-cache decoders, result buses), DCG powers a
//!    block *exactly* when it is used: zero violations AND zero
//!    powered-but-idle cycles.

use dcg_repro::core::{run_passive, Dcg, NoGating, RunLength};
use dcg_repro::sim::{LatchGroups, SimConfig};
use dcg_repro::workloads::{Spec2000, SyntheticWorkload};

fn run(bench: &str, cfg: &SimConfig) -> dcg_repro::core::PassiveRun {
    let groups = LatchGroups::new(&cfg.depth);
    let mut baseline = NoGating::new(cfg, &groups);
    let mut dcg = Dcg::new(cfg, &groups);
    run_passive(
        cfg,
        SyntheticWorkload::new(Spec2000::by_name(bench).expect("known"), 11),
        RunLength::quick(),
        &mut [&mut baseline, &mut dcg],
    )
}

#[test]
fn dcg_never_gates_a_used_block_on_any_benchmark() {
    let cfg = SimConfig::baseline_8wide();
    for p in Spec2000::all() {
        let groups = LatchGroups::new(&cfg.depth);
        let mut baseline = NoGating::new(&cfg, &groups);
        let mut dcg = Dcg::new(&cfg, &groups);
        // run_passive panics internally on any strict-audit violation.
        let r = run_passive(
            &cfg,
            SyntheticWorkload::new(p, 3),
            RunLength {
                warmup_insts: 2_000,
                measure_insts: 10_000,
            },
            &mut [&mut baseline, &mut dcg],
        );
        assert_eq!(r.outcomes[1].audit.violations, 0, "{}", p.name);
    }
}

#[test]
fn dcg_is_cycle_identical_to_baseline() {
    let cfg = SimConfig::baseline_8wide();
    let r = run("bzip2", &cfg);
    assert_eq!(r.outcomes[0].report.cycles(), r.outcomes[1].report.cycles());
    assert_eq!(
        r.outcomes[0].report.committed(),
        r.outcomes[1].report.committed()
    );
}

#[test]
fn dcg_has_zero_lost_opportunity_on_deterministic_blocks() {
    // Paper §1: "DCG guarantees no performance loss and no lost
    // opportunity for the blocks whose usage can be known in advance."
    let cfg = SimConfig::baseline_8wide();
    for bench in ["gzip", "mcf", "swim", "mesa"] {
        let r = run(bench, &cfg);
        let audit = &r.outcomes[1].audit;
        assert_eq!(audit.violations, 0, "{bench}");
        assert_eq!(
            audit.idle_enabled_unit_cycles, 0,
            "{bench}: a unit was powered while idle"
        );
        assert_eq!(
            audit.idle_enabled_port_cycles, 0,
            "{bench}: a decoder was powered while idle"
        );
        assert_eq!(
            audit.idle_enabled_bus_cycles, 0,
            "{bench}: a bus was powered while idle"
        );
    }
}

#[test]
fn dcg_invariants_hold_on_the_deep_pipeline_too() {
    let cfg = SimConfig::deep_pipeline_20();
    let r = run("applu", &cfg);
    let audit = &r.outcomes[1].audit;
    assert_eq!(audit.violations, 0);
    assert_eq!(audit.idle_enabled_unit_cycles, 0);
    assert_eq!(audit.idle_enabled_bus_cycles, 0);
    assert!(r.outcomes[1].report.power_saving_vs(&r.outcomes[0].report) > 0.1);
}

#[test]
fn energy_accounting_is_an_exact_identity() {
    use dcg_repro::power::Component;
    let cfg = SimConfig::baseline_8wide();
    let r = run("apsi", &cfg);
    let base = &r.outcomes[0].report;
    let dcg = &r.outcomes[1].report;

    // The breakdown is additive: component deltas sum exactly to the
    // total delta (no hidden energy).
    let total_delta = base.total_pj() - dcg.total_pj();
    let component_delta: f64 = Component::ALL
        .iter()
        .map(|c| base.component_pj(*c) - dcg.component_pj(*c))
        .sum();
    assert!(
        (total_delta - component_delta).abs() < 1e-6 * base.total_pj(),
        "bookkeeping identity violated"
    );

    // Only the paper's gated components (plus DCG's control) may differ.
    for c in Component::ALL {
        let differs =
            (base.component_pj(c) - dcg.component_pj(c)).abs() > 1e-9 * base.total_pj().max(1.0);
        let gateable = matches!(
            c,
            Component::IntUnits
                | Component::FpUnits
                | Component::PipelineLatch
                | Component::DcacheDecoder
                | Component::ResultBus
                | Component::GatingControl
        );
        assert!(
            !differs || gateable,
            "{}: changed under DCG but is not a gated component",
            c.label()
        );
    }
}

#[test]
fn dcg_tracks_the_clairvoyant_oracle() {
    use dcg_repro::core::run_oracle;
    use dcg_repro::core::RunLength;
    use dcg_repro::workloads::{Spec2000, SyntheticWorkload};

    let cfg = SimConfig::baseline_8wide();
    let r = run("gzip", &cfg);
    let base = &r.outcomes[0].report;
    let dcg_saving = r.outcomes[1].report.power_saving_vs(base);

    let oracle = run_oracle(
        &cfg,
        SyntheticWorkload::new(Spec2000::by_name("gzip").unwrap(), 11),
        RunLength::quick(),
    );
    let oracle_saving = oracle.report.power_saving_vs(base);
    assert!(
        oracle_saving >= dcg_saving - 1e-9,
        "no realizable policy may beat the oracle: {dcg_saving:.4} vs {oracle_saving:.4}"
    );
    assert!(
        oracle_saving - dcg_saving < 0.03,
        "DCG must sit within 3 points of the oracle: {dcg_saving:.4} vs {oracle_saving:.4}"
    );
}

#[test]
fn dcg_saving_includes_control_overhead() {
    use dcg_repro::power::Component;
    let cfg = SimConfig::baseline_8wide();
    let r = run("vortex", &cfg);
    let dcg = &r.outcomes[1].report;
    let base = &r.outcomes[0].report;
    // The DCG run pays for its control latches; the baseline does not.
    assert!(dcg.component_pj(Component::GatingControl) > 0.0);
    assert_eq!(base.component_pj(Component::GatingControl), 0.0);
    // Overhead is small: paper says ~1 % of latch power.
    let overhead = dcg.component_pj(Component::GatingControl);
    let latch_base = base.component_pj(Component::PipelineLatch);
    let ratio = overhead / latch_base;
    assert!(
        ratio < 0.03,
        "control overhead should be a few percent of latch power: {ratio:.4}"
    );
}
