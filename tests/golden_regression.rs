//! Golden regression: one fixed run pinned down to exact counts and
//! energies.
//!
//! Everything in this workspace is deterministic — the workload generator,
//! the pipeline, the bus arbiter, the gating controller and the energy
//! table — so this run must reproduce *bit-identically* forever. Any
//! intentional change to timing, calibration or generation will trip this
//! test; update the constants deliberately (and re-run the EXPERIMENTS.md
//! suite) when that happens.

use dcg_repro::core::{run_passive, Dcg, NoGating, RunLength};
use dcg_repro::sim::{LatchGroups, SimConfig};
use dcg_repro::workloads::{Spec2000, SyntheticWorkload};

#[test]
fn bzip2_seed42_is_bit_stable() {
    let cfg = SimConfig::baseline_8wide();
    let groups = LatchGroups::new(&cfg.depth);
    let mut base = NoGating::new(&cfg, &groups);
    let mut dcg = Dcg::new(&cfg, &groups);
    let run = run_passive(
        &cfg,
        SyntheticWorkload::new(Spec2000::by_name("bzip2").unwrap(), 42),
        RunLength {
            warmup_insts: 10_000,
            measure_insts: 50_000,
        },
        &mut [&mut base, &mut dcg],
    );

    assert_eq!(run.stats.cycles, 21_798);
    assert_eq!(run.stats.committed, 50_003);
    assert_eq!(run.stats.issued, 50_052);
    assert_eq!(run.stats.dcache_misses, 947);
    assert_eq!(run.stats.mispredicts, 487);

    let base_pj = run.outcomes[0].report.total_pj();
    let dcg_pj = run.outcomes[1].report.total_pj();
    assert!(
        (base_pj - 889_525_073.920).abs() < 1.0,
        "baseline energy drifted: {base_pj:.3}"
    );
    assert!(
        (dcg_pj - 690_933_006.080).abs() < 1.0,
        "DCG energy drifted: {dcg_pj:.3}"
    );
}
