//! Golden regression: one fixed run pinned down to exact counts and
//! energies.
//!
//! Everything in this workspace is deterministic — the workload generator,
//! the pipeline, the bus arbiter, the gating controller and the energy
//! table — so this run must reproduce *bit-identically* forever. Any
//! intentional change to timing, calibration or generation will trip this
//! test; update the constants deliberately (and re-run the EXPERIMENTS.md
//! suite) when that happens.

use dcg_repro::core::{run_passive, Dcg, NoGating, RunLength};
use dcg_repro::experiments::{kernel_savings_json, run_kernels, ExperimentConfig, Suite};
use dcg_repro::sim::{LatchGroups, SimConfig};
use dcg_repro::workloads::{Spec2000, SyntheticWorkload};

#[test]
fn bzip2_seed42_is_bit_stable() {
    let cfg = SimConfig::baseline_8wide();
    let groups = LatchGroups::new(&cfg.depth);
    let mut base = NoGating::new(&cfg, &groups);
    let mut dcg = Dcg::new(&cfg, &groups);
    let run = run_passive(
        &cfg,
        SyntheticWorkload::new(Spec2000::by_name("bzip2").unwrap(), 42),
        RunLength {
            warmup_insts: 10_000,
            measure_insts: 50_000,
        },
        &mut [&mut base, &mut dcg],
    );

    assert_eq!(run.stats.cycles, 20_994);
    assert_eq!(run.stats.committed, 50_000);
    assert_eq!(run.stats.issued, 50_004);
    assert_eq!(run.stats.dcache_misses, 738);
    assert_eq!(run.stats.mispredicts, 500);

    let base_pj = run.outcomes[0].report.total_pj();
    let dcg_pj = run.outcomes[1].report.total_pj();
    assert!(
        (base_pj - 858_968_445.760).abs() < 1.0,
        "baseline energy drifted: {base_pj:.3}"
    );
    assert!(
        (dcg_pj - 670_463_025.120).abs() < 1.0,
        "DCG energy drifted: {dcg_pj:.3}"
    );
}

/// The quick experiment suite, locked to goldens: each benchmark's DCG
/// total-power saving and IPC must stay within ±0.1% (relative) of the
/// committed values. Catches calibration drift that the bit-exact bzip2
/// test above would attribute to "something changed" without quantifying
/// how much.
#[test]
fn quick_suite_matches_goldens() {
    // (benchmark, DCG total-power saving, IPC) from a committed reference
    // run of `ExperimentConfig::quick()` at seed 42.
    const GOLDENS: [(&str, f64, f64); 3] = [
        ("gzip", 0.205532345021604, 2.666533333333333),
        ("mcf", 0.360641368470674, 0.679673691366417),
        ("swim", 0.299972622812348, 1.233853556227253),
    ];
    const REL_TOL: f64 = 1e-3; // ±0.1%

    let suite = Suite::run(&ExperimentConfig::quick(), false);
    assert_eq!(suite.runs.len(), GOLDENS.len());
    for (run, (name, saving, ipc)) in suite.runs.iter().zip(GOLDENS) {
        assert_eq!(run.profile.name, name);
        let got_saving = run.dcg_total_saving();
        let got_ipc = run.stats.ipc();
        assert!(
            (got_saving - saving).abs() <= saving.abs() * REL_TOL,
            "{name}: DCG saving drifted: got {got_saving}, golden {saving}"
        );
        assert!(
            (got_ipc - ipc).abs() <= ipc.abs() * REL_TOL,
            "{name}: IPC drifted: got {got_ipc}, golden {ipc}"
        );
    }
}

/// The real-program kernel suite, locked to goldens: cycle and commit
/// counts must stay *exact* (the kernels, the assembler and the pipeline
/// are all deterministic), and each gating scheme's total-power saving
/// must stay within ±0.1% (relative) of the committed reference run.
#[test]
fn kernel_suite_matches_goldens() {
    // (kernel, cycles, committed, DCG saving, PLB-ext saving, oracle
    // saving) from a committed reference run of `run_kernels` at the
    // 8-wide baseline. PLB-ext legitimately saves nothing on memfill:
    // the kernel never leaves PLB's high-IPC operating region.
    const GOLDENS: [(&str, u64, u64, f64, f64, f64); 6] = [
        (
            "memfill",
            4_066,
            20_005,
            0.100049193186398,
            0.0,
            0.100898864182090,
        ),
        (
            "matmul",
            4_005,
            20_001,
            0.114967848764621,
            0.031291420632055,
            0.118020384421905,
        ),
        (
            "strsearch",
            20_939,
            20_001,
            0.330079716933317,
            0.343030175906036,
            0.346437877494813,
        ),
        (
            "sort",
            5_071,
            20_001,
            0.153436352595769,
            0.017077921572453,
            0.154568276169641,
        ),
        (
            "ptrchase",
            13_365,
            20_000,
            0.274899634579927,
            0.307190231681881,
            0.283246534924826,
        ),
        (
            "rle",
            6_308,
            20_000,
            0.186330344030705,
            0.037789781980561,
            0.187548633430676,
        ),
    ];
    const REL_TOL: f64 = 1e-3; // ±0.1%
    let close = |got: f64, want: f64| (got - want).abs() <= want.abs().max(1e-9) * REL_TOL;

    let runs = run_kernels(&SimConfig::baseline_8wide(), None);
    assert_eq!(runs.len(), GOLDENS.len());
    for (run, (name, cycles, committed, dcg, plb, oracle)) in runs.iter().zip(GOLDENS) {
        assert_eq!(run.name, name);
        assert_eq!(run.stats.cycles, cycles, "{name}: cycle count drifted");
        assert_eq!(
            run.stats.committed, committed,
            "{name}: commit count drifted"
        );
        assert_eq!(
            run.dcg.audit.violations, 0,
            "{name}: DCG violated gating safety"
        );
        let (got_dcg, got_plb, got_oracle) =
            (run.dcg_saving(), run.plb_ext_saving(), run.oracle_saving());
        assert!(
            close(got_dcg, dcg),
            "{name}: DCG saving drifted: got {got_dcg}, golden {dcg}"
        );
        assert!(
            close(got_plb, plb),
            "{name}: PLB-ext saving drifted: got {got_plb}, golden {plb}"
        );
        assert!(
            close(got_oracle, oracle),
            "{name}: oracle saving drifted: got {got_oracle}, golden {oracle}"
        );
    }

    // The JSON identity surface is integer-only (counts and f64 bit
    // patterns) — serializing the same runs twice must be byte-identical.
    let doc = kernel_savings_json(&runs).to_string();
    assert_eq!(doc, kernel_savings_json(&runs).to_string());
    assert!(doc.contains("\"schema\":\"dcg-kernel-savings-v1\""));
    assert!(!doc.contains("null"), "identity surface must never be null");
}
