//! Replay-vs-live equivalence: driving the passive sinks from a recorded
//! activity trace must reproduce the live simulation's power reports,
//! gating audits and statistics **bit-identically** — the contract that
//! makes the simulate-once trace cache safe to use anywhere.

use std::path::PathBuf;

use dcg_repro::core::{
    run_oracle, run_oracle_source, run_passive, run_passive_with_sinks, Dcg, MetricsSink, NoGating,
    PassiveRun, RunLength, TraceCache,
};
use dcg_repro::experiments::metrics_json;
use dcg_repro::power::{Component, PowerReport};
use dcg_repro::sim::{LatchGroups, Processor, SimConfig};
use dcg_repro::workloads::{Spec2000, SyntheticWorkload};

const SEED: u64 = 11;

fn fresh_cache(tag: &str) -> TraceCache {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join("replay-equivalence")
        .join(tag);
    let _ = std::fs::remove_dir_all(&dir);
    TraceCache::new(dir)
}

/// Every float a [`PowerReport`] accumulates, by bit pattern.
fn report_bits(r: &PowerReport) -> Vec<u64> {
    let mut v = vec![r.cycles(), r.committed()];
    v.extend(Component::ALL.iter().map(|c| r.component_pj(*c).to_bits()));
    v
}

fn run_bits(run: &PassiveRun) -> (Vec<(String, Vec<u64>, String)>, String) {
    (
        run.outcomes
            .iter()
            .map(|o| {
                (
                    o.name.clone(),
                    report_bits(&o.report),
                    // GatingAudit and SimStats are integer-only, so Debug
                    // is an exact encoding.
                    format!("{:?}", o.audit),
                )
            })
            .collect(),
        format!("{:?}", run.stats),
    )
}

fn passive(cfg: &SimConfig, name: &str) -> PassiveRun {
    let groups = LatchGroups::new(&cfg.depth);
    let mut baseline = NoGating::new(cfg, &groups);
    let mut dcg = Dcg::new(cfg, &groups);
    let profile = Spec2000::by_name(name).unwrap();
    run_passive(
        cfg,
        SyntheticWorkload::new(profile, SEED),
        RunLength::quick(),
        &mut [&mut baseline, &mut dcg],
    )
}

fn passive_cached(cache: &TraceCache, cfg: &SimConfig, name: &str) -> PassiveRun {
    let groups = LatchGroups::new(&cfg.depth);
    let mut baseline = NoGating::new(cfg, &groups);
    let mut dcg = Dcg::new(cfg, &groups);
    let profile = Spec2000::by_name(name).unwrap();
    cache
        .run_passive_cached(
            cfg,
            profile,
            SEED,
            RunLength::quick(),
            &mut [&mut baseline, &mut dcg],
        )
        .expect("cached run over an intact entry")
}

/// Live, record (cold cache) and replay (warm cache) must agree to the
/// last bit — across an integer and an FP benchmark, and across both
/// pipeline depths.
#[test]
fn replay_is_bit_identical_to_live_across_profiles_and_depths() {
    let configs = [SimConfig::baseline_8wide(), SimConfig::deep_pipeline_20()];
    for cfg in &configs {
        for name in ["gzip", "swim"] {
            let tag = format!("{}-{name}", cfg.depth.total());
            let cache = fresh_cache(&tag);

            let live = passive(cfg, name);
            let cold = passive_cached(&cache, cfg, name);
            assert!(
                cache
                    .replay_source(cfg, name, SEED, RunLength::quick())
                    .is_some(),
                "{tag}: cold run must leave a valid cache entry"
            );
            let warm = passive_cached(&cache, cfg, name);

            assert_eq!(
                run_bits(&live),
                run_bits(&cold),
                "{tag}: recording must not change results"
            );
            assert_eq!(
                run_bits(&live),
                run_bits(&warm),
                "{tag}: replay must be bit-identical to live"
            );
        }
    }
}

/// Run the passive policies with a [`MetricsSink`] riding along and
/// serialize the resulting report — the integer-only JSON document is
/// the byte-equivalence surface.
fn metrics_doc_live(cfg: &SimConfig, name: &str) -> String {
    let groups = LatchGroups::new(&cfg.depth);
    let mut baseline = NoGating::new(cfg, &groups);
    let mut dcg = Dcg::new(cfg, &groups);
    let mut probe = Dcg::new(cfg, &groups);
    let mut metrics = MetricsSink::new(&mut probe, cfg, &groups);
    let profile = Spec2000::by_name(name).unwrap();
    let mut cpu = Processor::new(cfg.clone(), SyntheticWorkload::new(profile, SEED));
    run_passive_with_sinks(
        cfg,
        &mut cpu,
        RunLength::quick(),
        &mut [&mut baseline, &mut dcg],
        &mut [&mut metrics],
    )
    .expect("a live simulation source cannot fail");
    metrics_json(&metrics.into_report()).to_string()
}

fn metrics_doc_cached(cache: &TraceCache, cfg: &SimConfig, name: &str) -> String {
    let groups = LatchGroups::new(&cfg.depth);
    let mut baseline = NoGating::new(cfg, &groups);
    let mut dcg = Dcg::new(cfg, &groups);
    let mut probe = Dcg::new(cfg, &groups);
    let mut metrics = MetricsSink::new(&mut probe, cfg, &groups);
    let profile = Spec2000::by_name(name).unwrap();
    cache
        .run_passive_cached_with(
            cfg,
            profile,
            SEED,
            RunLength::quick(),
            &mut [&mut baseline, &mut dcg],
            &mut [&mut metrics],
        )
        .expect("cached run over an intact entry");
    metrics_json(&metrics.into_report()).to_string()
}

/// The cycle-level metrics document is part of the equivalence contract:
/// histograms, windowed time series and the gating audit trail must come
/// out byte-identical whether the activity stream is live, being recorded
/// (cold cache) or replayed (warm cache).
#[test]
fn metrics_json_is_byte_identical_across_live_and_replay() {
    let cfg = SimConfig::baseline_8wide();
    for name in ["gzip", "swim"] {
        let cache = fresh_cache(&format!("metrics-{name}"));

        let live = metrics_doc_live(&cfg, name);
        let cold = metrics_doc_cached(&cache, &cfg, name);
        assert!(
            cache
                .replay_source(&cfg, name, SEED, RunLength::quick())
                .is_some(),
            "{name}: cold run must leave a valid cache entry"
        );
        let warm = metrics_doc_cached(&cache, &cfg, name);

        assert!(
            live.contains("\"audit\""),
            "{name}: metrics document must carry the audit trail"
        );
        assert_eq!(live, cold, "{name}: recording must not change metrics");
        assert_eq!(live, warm, "{name}: replayed metrics must match live");
    }
}

/// The oracle runner accepts a replayed source too: clairvoyant gating is
/// a pure function of the activity stream.
#[test]
fn oracle_replays_bit_identically() {
    let cfg = SimConfig::baseline_8wide();
    let cache = fresh_cache("oracle");
    let profile = Spec2000::by_name("gzip").unwrap();

    let live = run_oracle(
        &cfg,
        SyntheticWorkload::new(profile, SEED),
        RunLength::quick(),
    );

    // Populate the cache, then replay through the oracle runner.
    let _ = passive_cached(&cache, &cfg, "gzip");
    let mut replay = cache
        .replay_source(&cfg, "gzip", SEED, RunLength::quick())
        .expect("cache entry");
    let replayed = run_oracle_source(&cfg, &mut replay, RunLength::quick())
        .expect("replaying an intact entry through the oracle cannot fail");

    assert_eq!(report_bits(&live.report), report_bits(&replayed.report));
}

/// Real-program kernel streams go through the same simulate-once cache as
/// the synthetic workloads: the cold (recording) run and the warm
/// (replayed) run must both be bit-identical to a live simulation.
#[test]
fn kernel_stream_replays_bit_identically() {
    use dcg_repro::workloads::Kernel;

    const KERNEL_SEED: u64 = 0;
    let cfg = SimConfig::baseline_8wide();
    let length = RunLength {
        warmup_insts: 2_000,
        measure_insts: 20_000,
    };
    let k = Kernel::by_name("rle").expect("rle kernel exists");
    let cache = fresh_cache("kernel-rle");

    let cached = |cache: &TraceCache| -> PassiveRun {
        let groups = LatchGroups::new(&cfg.depth);
        let mut baseline = NoGating::new(&cfg, &groups);
        let mut dcg = Dcg::new(&cfg, &groups);
        cache
            .run_passive_cached_stream(
                &cfg,
                k.name,
                KERNEL_SEED,
                length,
                || k.stream(),
                &mut [&mut baseline, &mut dcg],
                &mut [],
            )
            .expect("cached kernel run over an intact entry")
    };

    let live = {
        let groups = LatchGroups::new(&cfg.depth);
        let mut baseline = NoGating::new(&cfg, &groups);
        let mut dcg = Dcg::new(&cfg, &groups);
        let mut cpu = Processor::new(cfg.clone(), k.stream());
        run_passive_with_sinks(
            &cfg,
            &mut cpu,
            length,
            &mut [&mut baseline, &mut dcg],
            &mut [],
        )
        .expect("a live simulation source cannot fail")
    };
    let cold = cached(&cache);
    assert!(
        cache
            .replay_source(&cfg, k.name, KERNEL_SEED, length)
            .is_some(),
        "cold kernel run must leave a valid cache entry"
    );
    let warm = cached(&cache);

    assert_eq!(
        run_bits(&live),
        run_bits(&cold),
        "recording a kernel stream must not change results"
    );
    assert_eq!(
        run_bits(&live),
        run_bits(&warm),
        "replaying a kernel stream must be bit-identical to live"
    );
}
